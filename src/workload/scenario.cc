#include "workload/scenario.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "proto/registry.h"
#include "proto/transport_profile.h"
#include "sim/parallel.h"
#include "topo/builder.h"
#include "topo/partition.h"
#include "workload/endpoint_table.h"

namespace pase::workload {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Adapts DetLineage::less to the plain-function comparator obs:: expects
// (the obs layer cannot include sim/).
bool lineage_less(const void* ctx, std::uint64_t a, std::uint64_t b) {
  return static_cast<const sim::DetLineage*>(ctx)->less(a, b);
}

// Aggregate counters every run exports, independent of execution mode.
void fold_common_metrics(obs::MetricsRegistry& reg, const ScenarioResult& r,
                         topo::BuiltTopology& built) {
  std::uint64_t drops = 0, marks = 0, enqueues = 0;
  built.topo().for_each_queue([&](net::Queue& q) {
    drops += q.drops();
    marks += q.marks();
    enqueues += q.enqueues();
  });
  reg.counter("fabric.drops") = drops;
  reg.counter("fabric.marks") = marks;
  reg.counter("fabric.enqueues") = enqueues;
  reg.counter("flows.total") = r.total_flows();
  reg.counter("flows.unfinished") = r.unfinished();
  reg.counter("packets.data_sent") = r.data_packets_sent;
  reg.counter("packets.probes_sent") = r.probes_sent;
  reg.counter("control.messages_sent") = r.control.messages_sent;
  reg.counter("control.arbitrations") = r.control.arbitrations;
  reg.counter("engine.heap_closure_events") = r.heap_closure_events;
  reg.counter("endpoint.slab_grow_events") = r.slab_grow_events;
  reg.counter("endpoint.peak_live_flows") = r.peak_live_flows;
  reg.gauge("engine.workers") = r.workers_used;
  reg.gauge("time.end") = r.end_time;
  // Core-tier load balance (topologies with a core tier only): max/mean
  // bytes over the core-facing links. ~1.0 means the per-flow ECMP hash is
  // spreading load evenly; deterministic, so safe in sweep JSON.
  const std::vector<net::Link*> core = built.core_links();
  if (!core.empty()) {
    std::uint64_t total_bytes = 0, max_bytes = 0;
    for (const net::Link* l : core) {
      total_bytes += l->bytes_sent();
      max_bytes = std::max(max_bytes, l->bytes_sent());
    }
    const double mean = static_cast<double>(total_bytes) /
                        static_cast<double>(core.size());
    reg.counter("fabric.core_links") = core.size();
    reg.gauge("fabric.core_link_max_bytes") = static_cast<double>(max_bytes);
    reg.gauge("fabric.core_link_imbalance") =
        mean > 0.0 ? static_cast<double>(max_bytes) / mean : 0.0;
  }
  // Route-table footprint across the fabric: the scale benches gate on
  // bytes/switch staying sublinear in host count (compressed structural
  // routes). Deterministic — a pure function of the built topology.
  std::uint64_t route_bytes = 0;
  for (const auto& sw : built.topo().switches()) {
    route_bytes += sw->route_state_bytes();
  }
  reg.counter("fabric.switches") = built.topo().switches().size();
  reg.counter("fabric.route_table_bytes") = route_bytes;
  // setup_wall_sec intentionally stays out of the registry: the metrics
  // snapshot is serialized into sweep JSON, which must be deterministic.
  if (r.trace) reg.counter("trace.dropped") = r.trace->dropped;
}

// Self-profiler fold (--profile): dispatch mix, per-labeled-handler counts,
// calendar scan statistics, pending-event high-water mark and switch
// path-cache hit rates. Every input is deterministic (event counts and
// structural state, no wall clocks), so the profile.* entries are safe in
// sweep JSON. A parallel run passes one simulator per domain; counts sum.
void fold_profile_metrics(obs::MetricsRegistry& reg,
                          const std::vector<const sim::Simulator*>& doms,
                          topo::BuiltTopology& built) {
  std::uint64_t raw = 0, inl = 0, heap = 0, unlabeled = 0;
  std::uint64_t walks = 0, scan_sum = 0, scan_max = 0, peak = 0;
  for (const sim::Simulator* s : doms) {
    raw += s->profile_raw_dispatches();
    inl += s->profile_inline_dispatches();
    heap += s->profile_heap_dispatches();
    unlabeled += s->profile_unlabeled_dispatches();
    walks += s->profile_top_walks();
    scan_sum += s->profile_scan_sum();
    scan_max = std::max(scan_max, s->profile_scan_max());
    peak += s->profile_peak_pending();
    for (const auto& [label, count] : s->profiled_fn_counts()) {
      reg.counter(std::string("profile.engine.dispatch.") + label) += count;
    }
  }
  reg.counter("profile.engine.dispatch.raw") = raw;
  reg.counter("profile.engine.dispatch.inline_closure") = inl;
  reg.counter("profile.engine.dispatch.heap_closure") = heap;
  reg.counter("profile.engine.dispatch.raw_unlabeled") = unlabeled;
  reg.counter("profile.engine.top_walks") = walks;
  reg.gauge("profile.engine.scan_mean") =
      walks > 0 ? static_cast<double>(scan_sum) / static_cast<double>(walks)
                : 0.0;
  reg.counter("profile.engine.scan_max") = scan_max;
  reg.counter("profile.engine.peak_pending") = peak;
  std::uint64_t hits = 0, misses = 0;
  for (const auto& sw : built.topo().switches()) {
    hits += sw->path_cache_hits();
    misses += sw->path_cache_misses();
  }
  reg.counter("profile.switch.path_cache_hits") = hits;
  reg.counter("profile.switch.path_cache_misses") = misses;
  reg.gauge("profile.switch.path_cache_hit_rate") =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
}

// Applies scenario-level switch knobs once the topology is built: currently
// just the per-flow path-memo capacity (see ScenarioConfig::path_cache_entries;
// 0 disables the memo). Selections are identical at any capacity, so this
// never perturbs goldens.
void apply_switch_tuning(topo::BuiltTopology& built, const ScenarioConfig& cfg) {
  for (const auto& sw : built.topo().switches()) {
    sw->set_path_cache_capacity(cfg.path_cache_entries);
  }
}

const proto::TransportProfile& resolve_profile(const ScenarioConfig& cfg) {
  if (!cfg.profile_name.empty()) {
    if (const proto::TransportProfile* p =
            proto::profile_for(cfg.profile_name)) {
      return *p;
    }
    throw std::invalid_argument("unknown transport profile '" +
                                cfg.profile_name + "'");
  }
  return proto::profile_for(cfg.protocol);
}

std::unique_ptr<topo::TopologyBuilder> topology_builder(
    const ScenarioConfig& cfg) {
  if (cfg.topology == ScenarioConfig::TopologyKind::kSingleRack) {
    return std::make_unique<topo::SingleRackBuilder>(cfg.rack);
  }
  if (cfg.topology == ScenarioConfig::TopologyKind::kFatTree) {
    return std::make_unique<topo::FatTreeBuilder>(cfg.fattree);
  }
  return std::make_unique<topo::ThreeTierBuilder>(cfg.tree);
}

[[noreturn]] void bad_config(const std::string& what) {
  throw std::invalid_argument("invalid scenario config: " + what);
}

// Generic (profile-independent) sanity checks.
void validate_generic(const ScenarioConfig& cfg) {
  if (!(cfg.max_duration > 0.0)) {
    bad_config("max_duration must be positive, got " +
               std::to_string(cfg.max_duration));
  }
  if (cfg.topology == ScenarioConfig::TopologyKind::kSingleRack) {
    if (cfg.rack.num_hosts < 2) {
      bad_config("single-rack topology needs at least 2 hosts, got " +
                 std::to_string(cfg.rack.num_hosts));
    }
    if (!(cfg.rack.host_rate_bps > 0.0)) {
      bad_config("rack.host_rate_bps must be positive");
    }
  } else if (cfg.topology == ScenarioConfig::TopologyKind::kFatTree) {
    const topo::FatTreeConfig& ft = cfg.fattree;
    if (ft.k < 2 || ft.k % 2 != 0) {
      bad_config("fat-tree radix k must be even and at least 2, got " +
                 std::to_string(ft.k));
    }
    if (ft.num_pods < 0 || ft.pods() > ft.k) {
      bad_config("fat-tree num_pods (" + std::to_string(ft.num_pods) +
                 ") must lie in [0, k]");
    }
    if (!(ft.oversubscription > 0.0) || ft.hosts_per_edge() < 1) {
      bad_config("fat-tree oversubscription must give at least 1 host per "
                 "edge switch");
    }
    if (ft.num_hosts() < 2) {
      bad_config("fat-tree topology needs at least 2 hosts");
    }
    if (!(ft.host_rate_bps > 0.0) || !(ft.fabric_rate_bps > 0.0)) {
      bad_config("fat-tree link rates must be positive");
    }
  } else {
    if (cfg.tree.num_tors < 1 || cfg.tree.hosts_per_tor < 1 ||
        cfg.tree.tors_per_agg < 1) {
      bad_config("three-tier dimensions must all be at least 1");
    }
    if (cfg.tree.num_tors % cfg.tree.tors_per_agg != 0) {
      bad_config("num_tors (" + std::to_string(cfg.tree.num_tors) +
                 ") must be a multiple of tors_per_agg (" +
                 std::to_string(cfg.tree.tors_per_agg) + ")");
    }
    if (cfg.tree.num_tors * cfg.tree.hosts_per_tor < 2) {
      bad_config("three-tier topology needs at least 2 hosts");
    }
    if (!(cfg.tree.host_rate_bps > 0.0) || !(cfg.tree.fabric_rate_bps > 0.0)) {
      bad_config("tree link rates must be positive");
    }
  }
  const WorkloadConfig& t = cfg.traffic;
  if (!(t.load > 0.0)) {
    bad_config("traffic.load must be positive, got " + std::to_string(t.load));
  }
  if (t.size_min_bytes <= 0 || t.size_max_bytes < t.size_min_bytes) {
    bad_config("flow size range [" + std::to_string(t.size_min_bytes) + ", " +
               std::to_string(t.size_max_bytes) +
               "] is empty or non-positive");
  }
  if (t.deadline_min < 0.0 || t.deadline_max < t.deadline_min) {
    bad_config("deadline range [" + std::to_string(t.deadline_min) + ", " +
               std::to_string(t.deadline_max) + "] is invalid");
  }
  if (t.pattern == Pattern::kLeftRight &&
      cfg.topology == ScenarioConfig::TopologyKind::kSingleRack) {
    bad_config("left-right traffic needs a topology with a fabric tier");
  }
}

stats::FlowRecord record_from(const transport::Flow& f) {
  stats::FlowRecord rec;
  rec.id = f.id;
  rec.size_bytes = f.size_bytes;
  rec.start = f.start_time;
  rec.deadline = f.deadline;
  rec.background = f.background;
  return rec;
}

// The dense demux table on every host grows by doubling as flow ids climb;
// pre-growing it to the workload's id ceiling makes steady-state
// registration allocation-free. The dense range itself is budgeted across
// the host population: a fixed fleet-wide byte budget divided by the host
// count caps each host's dense table, so a 1k-host fat-tree doesn't pay
// (hosts x id-range) RSS — ids past the cap use the sparse table, which
// sizes with live flows (small under endpoint recycling), not the id range.
// The demux rounds the cap *down* to a power of two (its growth schedule is
// doubling), so the fleet-wide budget is a hard ceiling, not a target the
// next doubling can overshoot by 2x. Rack-scale runs stay fully dense: the
// cap only bites past ~128 hosts.
void prewarm_demux(topo::Topology& topo,
                   const std::vector<transport::Flow>& flows) {
  constexpr std::size_t kDenseBudgetBytes = 64ull << 20;  // fleet-wide
  const std::size_t hosts = topo.num_hosts();
  const net::FlowId cap = hosts == 0
                              ? net::FlowDemux::kDenseLimit
                              : kDenseBudgetBytes / sizeof(void*) / hosts;
  net::FlowId max_id = 0;
  for (const auto& f : flows) max_id = std::max(max_id, f.id);
  for (const auto& h : topo.hosts()) {
    h->set_dense_flow_limit(cap);
    h->reserve_flows(max_id);
  }
}

// --- Sequential driver -------------------------------------------------------
//
// Flows exist in three forms over their life:
//   pending    — a compact descriptor in Run::flows plus one inline launch
//                event; no endpoints, no demux entries, no per-flow heap.
//   live       — an EndpointSlot: sender/receiver placement-constructed into
//                the profile's slab arenas, SoA row bound, demux registered.
//   retired    — after sender finish + receiver completion (or termination),
//                one full 10 ms chunk of quarantine (longer than any
//                in-flight packet's remaining life: path delays are
//                microseconds and finished senders cancel their timers),
//                then the endpoints are destroyed and the slot recycled.
// Packet counters are accumulated into the run at retirement — sums are
// commutative, so totals match the old everything-lives-forever driver bit
// for bit, as the golden fingerprints verify.

struct Run {
  sim::Simulator sim;
  std::unique_ptr<topo::BuiltTopology> built;
  std::unique_ptr<proto::ControlPlane> control;
  // Declared after `control` so endpoints are destroyed before the control
  // plane (PASE receivers hold callbacks into it), and before `sim` falls
  // out of scope via the struct's own teardown order.
  EndpointTable table;
  std::vector<stats::FlowRecord> records;  // exact mode: index == flow index
  std::unique_ptr<stats::StreamingFlowStats> streaming;  // streaming mode
  std::vector<bool> activated;  // flow index -> launch event ran
  // Flow indices sorted by start time (stable, so same-instant flows keep
  // generation order). Launches chain through it: exactly one pending
  // launch event exists at a time — see launch_batch.
  std::vector<std::uint32_t> launch_order;
  std::vector<std::uint32_t> retire_pending;  // done this chunk
  std::vector<std::uint32_t> retire_ready;    // quarantined one full chunk
  std::size_t outstanding = 0;  // short flows not yet finished
  // Flow table plus profile/context pointers, so a launch event captures
  // only {&run, index} — 16 bytes, inside the simulator's inline payload.
  std::vector<transport::Flow> flows;
  const proto::TransportProfile* profile = nullptr;
  proto::RunContext* ctx = nullptr;
  // Non-null iff cfg.telemetry.enabled: launches feed the flow heavy-hitter
  // sketch; the harness loop drives queue sampling at chunk boundaries.
  obs::TelemetryPlane* telemetry = nullptr;
  bool recycle = true;
  // Accumulated at slot retirement; live slots are folded in at run end.
  std::uint64_t data_packets_sent = 0;
  std::uint64_t probes_sent = 0;
};

stats::FlowRecord& record_for(Run& run, EndpointSlot& sl) {
  return run.streaming ? sl.record : run.records[sl.flow_index];
}

void maybe_queue_retire(Run& run, std::uint32_t s) {
  if (!run.recycle) return;
  EndpointSlot& sl = run.table.slot(s);
  if (sl.queued_retire || !sl.done) return;
  if (!sl.sender->finished()) return;
  if (!sl.receiver_done && !sl.sender->terminated()) return;
  sl.queued_retire = true;
  run.retire_pending.push_back(s);
}

// Destroys a retired (or end-of-run live) slot after folding its counters
// and, in streaming mode, its record.
void retire_now(Run& run, std::uint32_t s) {
  EndpointSlot& sl = run.table.slot(s);
  run.data_packets_sent += sl.sender->data_packets_sent();
  run.probes_sent += sl.sender->probes_sent();
  sl.src->unregister_flow(sl.flow_id);
  sl.dst->unregister_flow(sl.flow_id);
  if (run.streaming) run.streaming->add(sl.record);
  run.table.destroy(s);
  run.table.release(s);
}

// Chunk-boundary recycling: slots queued during the chunk just executed go
// into quarantine; slots that have sat out a full chunk are reclaimed.
void recycle_tick(Run& run) {
  for (std::uint32_t s : run.retire_ready) retire_now(run, s);
  run.retire_ready.clear();
  std::swap(run.retire_ready, run.retire_pending);
}

void launch_flow(Run& run, std::size_t i) {
  const transport::Flow& flow = run.flows[i];
  topo::Topology& topo = run.ctx->built.topo();
  net::Host* src = static_cast<net::Host*>(topo.node(flow.src));
  net::Host* dst = static_cast<net::Host*>(topo.node(flow.dst));
  assert(src && dst);
  run.activated[i] = true;
  // Heavy-hitter feed rides the launch: launches run in start-time order
  // (stable on flow index), the exact order the parallel driver stages
  // flows, so the sketch sees an identical update sequence either way.
  if (run.telemetry != nullptr) {
    run.telemetry->note_flow(flow.id, flow.size_bytes);
  }

  const std::uint32_t s = run.table.acquire();
  EndpointSlot& slot = run.table.slot(s);
  slot.flow_index = static_cast<std::uint32_t>(i);
  if (run.streaming) slot.record = record_from(flow);
  run.table.construct(s, *run.profile, *run.ctx, *run.ctx, flow, *src, *dst);

  slot.receiver->on_complete = [&run, s](transport::Receiver& r) {
    EndpointSlot& sl = run.table.slot(s);
    sl.receiver_done = true;
    stats::FlowRecord& rec = record_for(run, sl);
    if (rec.finish < 0.0 && !rec.terminated) {
      rec.finish = r.completion_time();
      sl.done = true;
      if (!rec.background && run.outstanding > 0) --run.outstanding;
    }
    maybe_queue_retire(run, s);
  };
  slot.sender->on_complete = [&run, s](transport::Sender& snd) {
    EndpointSlot& sl = run.table.slot(s);
    stats::FlowRecord& rec = record_for(run, sl);
    if (snd.terminated() && rec.finish < 0.0 && !rec.terminated) {
      rec.terminated = true;
      sl.done = true;
      if (!rec.background && run.outstanding > 0) --run.outstanding;
    }
    maybe_queue_retire(run, s);
  };

  run.profile->before_flow_start(*run.ctx, *slot.sender, *slot.receiver);
  src->register_flow(flow.id, slot.sender);
  dst->register_flow(flow.id, slot.receiver);
  slot.sender->start();
}

// Launches every flow at launch_order[pos...] sharing one start instant,
// then schedules the next batch. Chaining keeps the calendar free of tens
// of thousands of far-future launch events: those alias into day buckets a
// whole rotation out, and every steady-state insert that lands in a bucket
// with such an alien at its head touches a cold slot line. One pending
// launch at a time also keeps the slot arena sized by in-flight events,
// not by workload length. Ordering is unchanged: same-instant flows run
// inside one event in generation order — exactly the relative order the
// schedule-everything-up-front driver produced (launch events were the
// first seqs assigned, consecutively, so nothing could interleave them).
void launch_batch(Run& run, std::size_t pos) {
  const double t = run.flows[run.launch_order[pos]].start_time;
  do {
    launch_flow(run, run.launch_order[pos]);
    ++pos;
  } while (pos < run.launch_order.size() &&
           run.flows[run.launch_order[pos]].start_time == t);
  if (pos < run.launch_order.size()) {
    run.sim.schedule_at(run.flows[run.launch_order[pos]].start_time,
                        [&run, pos] { launch_batch(run, pos); });
  }
}

// End-of-run folding shared by both stats modes: flush quarantine, fold
// still-live slots (unfinished and background flows), and in streaming mode
// account for descriptors whose launch event never ran.
void finalize_flows(Run& run) {
  for (std::uint32_t s : run.retire_ready) retire_now(run, s);
  run.retire_ready.clear();
  for (std::uint32_t s : run.retire_pending) retire_now(run, s);
  run.retire_pending.clear();
  for (std::uint32_t s = 0; s < run.table.size(); ++s) {
    EndpointSlot& sl = run.table.slot(s);
    if (!sl.in_use || sl.sender == nullptr) continue;
    run.data_packets_sent += sl.sender->data_packets_sent();
    run.probes_sent += sl.sender->probes_sent();
    if (run.streaming) run.streaming->add(record_for(run, sl));
  }
  if (run.streaming) {
    for (std::size_t i = 0; i < run.flows.size(); ++i) {
      if (!run.activated[i]) run.streaming->add(record_from(run.flows[i]));
    }
  }
}

// --- Conditional-lookahead horizon probe -------------------------------------
//
// Per-domain data for ParallelEngine::set_horizon_probe. The engine needs,
// each round, a certified lower bound D on the delay before the domain's
// pending work can deliver into another domain; it then widens the window to
// next_t + D instead of the static next_t + min-cut-propagation.
//
// The bound is a shortest-path argument. Every hop a packet takes costs at
// least serialization of a 40-byte control packet plus the link's
// propagation delay, so with
//   dist[v] = min over outbound cut links j of (store-and-forward distance
//             from node v to the cut's source, each hop weighted
//             ser40 + prop, plus the cut's own ser40 + prop)
// an event chain that starts at node v cannot post a cross-domain delivery
// before next_t + dist[v] (computed by a multi-source Dijkstra over the
// reversed intra-domain graph, seeded at the cut sources).
//
// Every pending event either (a) fires at a host or a control-plane timer
// switch — covered by the static term event_dist = min dist over those
// nodes — or (b) belongs to an in-flight packet on some link, covered by
// three activity terms checked per round against the link probes:
//   local link busy/in-flight  -> its delivery fires at dst, chain >= dist[dst]
//   outbound cut link busy     -> its delivery posts after >= prop(cut)
//   inbound cut delivery pending-> it fires at dst, chain >= dist[dst]
// Entries that cannot undercut event_dist are pruned at build time and the
// rest are scanned in ascending order, so a round's probe is a few loads.
// The probe only ever runs while mailboxes are empty (the engine guarantees
// it), which is what makes the activity probes complete.

struct DomainProbe {
  sim::Time event_dist = sim::kTimeInfinity;
  // (link, certified delay), ascending by delay, pruned to < event_dist.
  std::vector<std::pair<const net::Link*, sim::Time>> local;
  std::vector<std::pair<const net::Link*, sim::Time>> out_cut;
  std::vector<std::pair<const net::Link*, sim::Time>> in_cut;
};

std::vector<DomainProbe> build_horizon_probes(
    topo::Topology& topo, const topo::Partition& part,
    const proto::ControlPlane* control) {
  struct Edge {
    net::NodeId src;
    net::NodeId dst;
    const net::Link* link;
  };
  const auto weight = [](const net::Link* l) {
    return l->serialization_delay(net::kControlPacketBytes) + l->prop_delay();
  };

  const std::size_t W = static_cast<std::size_t>(part.domains);
  std::vector<std::vector<Edge>> intra(W), out_cut(W), in_cut(W);
  const auto add_edge = [&](net::NodeId src, const net::Link& l) {
    const Edge e{src, l.destination()->id(), &l};
    const auto sd = static_cast<std::size_t>(part.domain_of_node(e.src));
    const auto dd = static_cast<std::size_t>(part.domain_of_node(e.dst));
    if (sd == dd) {
      intra[sd].push_back(e);
    } else {
      out_cut[sd].push_back(e);
      in_cut[dd].push_back(e);
    }
  };
  for (const auto& h : topo.hosts()) add_edge(h->id(), h->uplink());
  for (const auto& sw : topo.switches()) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      add_edge(sw->id(), sw->port_link(p));
    }
  }

  std::vector<net::NodeId> timer_nodes;
  if (control != nullptr) control->append_timer_nodes(timer_nodes);

  std::vector<DomainProbe> probes(W);
  for (std::size_t d = 0; d < W; ++d) {
    // Multi-source Dijkstra over the reversed intra-domain graph.
    std::unordered_map<net::NodeId,
                       std::vector<std::pair<net::NodeId, sim::Time>>>
        rev;
    for (const Edge& e : intra[d]) {
      rev[e.dst].push_back({e.src, weight(e.link)});
    }
    std::unordered_map<net::NodeId, sim::Time> dist;
    const auto dist_of = [&dist](net::NodeId v) {
      const auto it = dist.find(v);
      return it == dist.end() ? sim::kTimeInfinity : it->second;
    };
    using QE = std::pair<sim::Time, net::NodeId>;
    std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
    for (const Edge& e : out_cut[d]) {
      const sim::Time seed = weight(e.link);
      if (seed < dist_of(e.src)) {
        dist[e.src] = seed;
        pq.push({seed, e.src});
      }
    }
    while (!pq.empty()) {
      const auto [t, v] = pq.top();
      pq.pop();
      if (t > dist_of(v)) continue;
      const auto it = rev.find(v);
      if (it == rev.end()) continue;
      for (const auto& [u, w] : it->second) {
        if (t + w < dist_of(u)) {
          dist[u] = t + w;
          pq.push({t + w, u});
        }
      }
    }

    DomainProbe& dp = probes[d];
    for (const auto& h : topo.hosts()) {
      if (static_cast<std::size_t>(part.domain_of_node(h->id())) == d) {
        dp.event_dist = std::min(dp.event_dist, dist_of(h->id()));
      }
    }
    for (const net::NodeId n : timer_nodes) {
      if (static_cast<std::size_t>(part.domain_of_node(n)) == d) {
        dp.event_dist = std::min(dp.event_dist, dist_of(n));
      }
    }
    for (const Edge& e : intra[d]) {
      const sim::Time t = dist_of(e.dst);
      if (t < dp.event_dist) dp.local.push_back({e.link, t});
    }
    for (const Edge& e : out_cut[d]) {
      const sim::Time t = e.link->prop_delay();
      if (t < dp.event_dist) dp.out_cut.push_back({e.link, t});
    }
    for (const Edge& e : in_cut[d]) {
      const sim::Time t = dist_of(e.dst);
      if (t < dp.event_dist) dp.in_cut.push_back({e.link, t});
    }
    const auto by_delay = [](const auto& a, const auto& b) {
      return a.second < b.second;
    };
    std::sort(dp.local.begin(), dp.local.end(), by_delay);
    std::sort(dp.out_cut.begin(), dp.out_cut.end(), by_delay);
    std::sort(dp.in_cut.begin(), dp.in_cut.end(), by_delay);
  }
  return probes;
}

// --- Conservative-parallel driver --------------------------------------------
//
// Same run, partitioned: one Simulator per domain under a
// sim::ParallelEngine, every link rebound to its transmitting node's domain,
// cut links posting deliveries through the engine's mailboxes. Bit-identity
// with the sequential path rests on three things:
//
//   (1) every cross-domain interaction is a Link delivery, and injected
//       deliveries carry lineage nodes that sort them against local events
//       exactly where the sequential FIFO would have placed them
//       (sim/det_lineage.h);
//   (2) endpoints materialize lazily at chunk barriers (construction and
//       register_flow are passive for every parallel-safe profile), and the
//       sender->start() event's setup index is the flow index — lineage
//       roots depend on that index alone, so the staged schedule replays the
//       sequential launch ordering no matter when construction happened;
//   (3) completion callbacks do not touch shared state from worker threads:
//       they append {node, time} records to per-domain lists, which the
//       main thread merges in lineage order at each chunk boundary,
//       replaying the sequential first-wins guards. Slot retirement and
//       recycling likewise run only at barriers, while every domain is
//       quiescent.
//
// Returns nullopt when the partition is unusable (fewer than two domains or
// a zero-delay cut link), naming the cause in *reason; the caller then runs
// the sequential body.
std::optional<ScenarioResult> try_run_parallel(
    const ScenarioConfig& cfg, const std::vector<transport::Flow>& flow_list,
    const proto::TransportProfile& profile, std::string* reason) {
  const Clock::time_point setup_t0 = Clock::now();
  // Trace buffers are declared before the engine so they are destroyed
  // after it — worker threads hold thread-local pointers into them until
  // the engine joins its pool.
  std::vector<std::unique_ptr<obs::TraceBuffer>> tbufs;
  std::vector<std::string> queue_names;
  // The engine is declared first so it is destroyed last: sender, receiver
  // and control-plane destructors cancel timers on their domain simulators.
  sim::ParallelEngine engine(cfg.workers);
  const int n_dom = engine.num_domains();

  std::unique_ptr<topo::BuiltTopology> built_ptr =
      topology_builder(cfg)->build(engine.domain(0),
                                   profile.make_queue_factory(cfg));
  topo::BuiltTopology& built = *built_ptr;
  topo::Topology& topo = built.topo();
  apply_switch_tuning(built, cfg);

  const topo::Partition part = partition_topology(topo, cfg.workers);
  if (!part.usable()) {
    if (reason != nullptr) {
      *reason = part.domains < 2
                    ? "partition produced fewer than two domains"
                    : "a cut link has zero propagation delay";
    }
    return std::nullopt;
  }
  engine.set_lookahead(part.lookahead);
  if (cfg.profile) {
    for (int d = 0; d < n_dom; ++d) engine.domain(d).enable_profiling();
  }

  // Telemetry plane, sampled only at engine-quiescent instants (run_until
  // returns with every mailbox drained and all domain clocks on the target),
  // so queue state reads race nothing and the sample sequence — hence the
  // JSONL — is byte-identical at any worker count.
  std::unique_ptr<obs::TelemetryPlane> telemetry;
  if (cfg.telemetry.enabled) {
    telemetry = std::make_unique<obs::TelemetryPlane>(built, cfg.telemetry);
  }

  // Every link schedules on the clock of the node that transmits into it;
  // cut links post into the destination domain instead.
  const auto domain_sim = [&engine, &part](net::NodeId id) -> sim::Simulator& {
    return engine.domain(part.domain_of_node(id));
  };
  for (const auto& h : topo.hosts()) {
    h->uplink().bind_domain(domain_sim(h->id()));
  }
  for (const auto& sw : topo.switches()) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      sw->port_link(p).bind_domain(domain_sim(sw->id()));
    }
  }
  for (const auto& c : part.cut_links) {
    c.link->set_cross_post(&engine, c.src_domain, c.dst_domain);
  }
  // A run can end with deliveries still in a mailbox; their payload is a
  // released Packet that must go back to a pool.
  engine.set_orphan_deleter([](sim::RawFn, void*, void* arg) {
    net::PacketPtr(static_cast<net::Packet*>(arg));
  });

  proto::RunContext ctx0{engine.domain(0), built,
                         static_cast<const proto::ProfileParams&>(cfg)};
  ctx0.base_rtt = proto::estimate_base_rtt(topo, built.host_rate_bps());
  for (const auto& f : flow_list) {
    ctx0.any_deadline = ctx0.any_deadline || f.has_deadline();
  }
  ctx0.sim_resolver = domain_sim;
  std::unique_ptr<proto::ControlPlane> control =
      profile.make_control_plane(ctx0);
  ctx0.control = control.get();

  // Conditional lookahead: certify per-domain bounds from the topology (and
  // the control plane's timer nodes), arm the links' activity counters, and
  // hand the engine a per-round probe. Static mode skips all of it and the
  // engine falls back to next_t + min-cut-propagation windows.
  std::vector<DomainProbe> probes;
  if (cfg.horizon_mode == ScenarioConfig::HorizonMode::kConditional) {
    probes = build_horizon_probes(topo, part, control.get());
    for (const auto& h : topo.hosts()) h->uplink().arm_activity_tracking();
    for (const auto& sw : topo.switches()) {
      for (int p = 0; p < sw->num_ports(); ++p) {
        sw->port_link(p).arm_activity_tracking();
      }
    }
    const sim::Time la = part.lookahead;
    engine.set_horizon_probe([&probes, la](int d, sim::Time nt) -> sim::Time {
      const DomainProbe& dp = probes[static_cast<std::size_t>(d)];
      sim::Time dmin = dp.event_dist;
      for (const auto& [l, t] : dp.local) {
        if (t >= dmin) break;
        if (l->probe_local_active()) {
          dmin = t;
          break;
        }
      }
      for (const auto& [l, t] : dp.out_cut) {
        if (t >= dmin) break;
        if (l->probe_cut_busy()) {
          dmin = t;
          break;
        }
      }
      for (const auto& [l, t] : dp.in_cut) {
        if (t >= dmin) break;
        if (l->probe_cut_inflight()) {
          dmin = t;
          break;
        }
      }
      // dmin is exact in the reals but the event path accumulates its hop
      // delays one rounded addition at a time, so a delivery whose exact
      // time equals nt + dmin can land an ulp early (ACK clocking makes
      // exact-equality chains the common case, not a corner). Deflate by a
      // relative margin that dominates the worst-case accumulated rounding
      // of any chain the bound covers (<~60 operations, each contributing
      // at most one ulp of the final magnitude; 64 machine epsilons is an
      // order of magnitude more). The static bound needs no margin — IEEE
      // addition is monotone, and every event path dominates nt + lookahead
      // argument-by-argument — so it is a safe floor.
      constexpr double kFpMargin =
          64.0 * std::numeric_limits<double>::epsilon();
      return std::max(nt + la, (nt + dmin) * (1.0 - kFpMargin));
    });
  }

  // Endpoint storage, declared after the control plane so receivers (whose
  // callbacks may point into it) are destroyed first.
  EndpointTable table;
  table.init(profile);

  // Per-domain contexts so endpoint factories place each agent on its own
  // node's clock (ctx.sim is what sender/receiver constructors capture).
  std::vector<proto::RunContext> dctx;
  dctx.reserve(static_cast<std::size_t>(n_dom));
  for (int d = 0; d < n_dom; ++d) {
    dctx.push_back(proto::RunContext{engine.domain(d), built, ctx0.params});
    dctx.back().base_rtt = ctx0.base_rtt;
    dctx.back().any_deadline = ctx0.any_deadline;
    dctx.back().control = ctx0.control;
    dctx.back().sim_resolver = ctx0.sim_resolver;
  }

  // Pre-size each domain's calendar and packet pool like the sequential path
  // does, scaled to the domain's share of hosts and launches.
  std::vector<std::size_t> dom_hosts(static_cast<std::size_t>(n_dom), 0);
  for (const auto& h : topo.hosts()) {
    ++dom_hosts[static_cast<std::size_t>(part.domain_of_node(h->id()))];
  }
  // One trace ring per domain, installed on whichever thread runs that
  // domain (the caller thread for domain 0). Lineage keys stamped on every
  // record let the buffers merge back into sequential emission order.
  if (cfg.trace.enabled) {
    queue_names = obs::label_fabric_queues(topo);
    tbufs.reserve(static_cast<std::size_t>(n_dom));
    for (int d = 0; d < n_dom; ++d) {
      tbufs.push_back(std::make_unique<obs::TraceBuffer>(
          cfg.trace.buffer_capacity, cfg.trace.categories));
    }
  }
  engine.set_thread_init([&dom_hosts, &tbufs](int d) {
    net::PacketPool::local().prewarm(
        dom_hosts[static_cast<std::size_t>(d)] * 16 + 256);
    if (!tbufs.empty()) {
      obs::install_tracer(tbufs[static_cast<std::size_t>(d)].get());
    }
  });

  // Pending descriptors, records and bookkeeping. record index == flow
  // index; activation order is start-time order (stable on flow index for
  // simultaneous arrivals, which is exactly the sequential tie-break).
  const bool exact = cfg.stats_mode == ScenarioConfig::StatsMode::kExact;
  std::unique_ptr<stats::StreamingFlowStats> streaming;
  if (!exact) streaming = std::make_unique<stats::StreamingFlowStats>();
  std::vector<transport::Flow> flows = flow_list;
  std::vector<stats::FlowRecord> records;
  if (exact) records.reserve(flows.size());
  std::size_t outstanding = 0;
  std::vector<std::size_t> dom_flows(static_cast<std::size_t>(n_dom), 0);
  for (auto& f : flows) {
    f.src = topo.host(static_cast<std::size_t>(f.src))->id();
    f.dst = topo.host(static_cast<std::size_t>(f.dst))->id();
    ++dom_flows[static_cast<std::size_t>(part.domain_of_node(f.src))];
    if (exact) records.push_back(record_from(f));
    if (!f.background) ++outstanding;
  }
  for (int d = 0; d < n_dom; ++d) {
    engine.domain(d).reserve(dom_flows[static_cast<std::size_t>(d)] +
                             dom_hosts[static_cast<std::size_t>(d)] * 8 + 64);
  }
  prewarm_demux(topo, flows);

  std::vector<std::uint32_t> order(flows.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&flows](std::uint32_t a, std::uint32_t b) {
                     return flows[a].start_time < flows[b].start_time;
                   });
  std::size_t next_pending = 0;

  // Completion records deferred to chunk boundaries. Worker threads only
  // ever touch their own domain's list; the main thread merges between
  // run_until calls, with the barriers providing the happens-before edges.
  struct Completion {
    sim::DetLineage::NodeId node;
    sim::Time time;
    std::uint32_t slot;
    bool receiver_done;  // receiver completion vs sender early termination
  };
  std::vector<std::vector<Completion>> deferred(
      static_cast<std::size_t>(n_dom));

  // Done slots whose sender has not yet processed its final ack; polled at
  // each barrier (domains quiescent) until retire-eligible.
  std::vector<std::uint32_t> awaiting;
  std::vector<std::uint32_t> retire_pending, retire_ready;
  std::uint64_t data_packets_sent = 0, probes_sent = 0;
  const bool recycle = cfg.recycle_endpoints;

  const auto retire_slot = [&](std::uint32_t s) {
    EndpointSlot& sl = table.slot(s);
    data_packets_sent += sl.sender->data_packets_sent();
    probes_sent += sl.sender->probes_sent();
    sl.src->unregister_flow(sl.flow_id);
    sl.dst->unregister_flow(sl.flow_id);
    if (streaming) streaming->add(sl.record);
    table.destroy(s);
    table.release(s);
  };

  // Setup-time lineage roots claimed by the control plane during its
  // construction (delegation timers); flow launches index past them.
  const std::uint32_t setup_base = control ? control->setup_events() : 0;

  // Materializes pending flows whose start falls inside the next chunk:
  // construct into the slabs, wire deferred-completion callbacks, register
  // with the demux, and schedule the start event under setup lineage.
  const auto stage_until = [&](sim::Time horizon) {
    while (next_pending < order.size()) {
      const std::uint32_t i = order[next_pending];
      const transport::Flow& f = flows[i];
      if (f.start_time > horizon) break;
      ++next_pending;
      // Same traversal order as the sequential launch chain (start-time
      // stable sort on flow index), so the sketch update sequence matches.
      if (telemetry) telemetry->note_flow(f.id, f.size_bytes);

      const std::size_t sd =
          static_cast<std::size_t>(part.domain_of_node(f.src));
      const std::size_t dd =
          static_cast<std::size_t>(part.domain_of_node(f.dst));
      net::Host* src = static_cast<net::Host*>(topo.node(f.src));
      net::Host* dst = static_cast<net::Host*>(topo.node(f.dst));
      assert(src && dst);

      const std::uint32_t s = table.acquire();
      EndpointSlot& slot = table.slot(s);
      slot.flow_index = i;
      if (streaming) slot.record = record_from(f);
      table.construct(s, profile, dctx[sd], dctx[dd], f, *src, *dst);

      std::vector<Completion>* rlist = &deferred[dd];
      sim::Simulator* rsim = &engine.domain(static_cast<int>(dd));
      slot.receiver->on_complete = [rlist, rsim, s](transport::Receiver& r) {
        rlist->push_back(
            {rsim->make_post_node(), r.completion_time(), s, true});
      };
      std::vector<Completion>* slist = &deferred[sd];
      sim::Simulator* ssim = &engine.domain(static_cast<int>(sd));
      slot.sender->on_complete = [slist, ssim, s](transport::Sender& snd) {
        if (snd.terminated()) {
          slist->push_back({ssim->make_post_node(), 0.0, s, false});
        }
      };

      profile.before_flow_start(dctx[sd], *slot.sender, *slot.receiver);
      src->register_flow(f.id, slot.sender);
      dst->register_flow(f.id, slot.receiver);
      // The start event becomes a lineage root with k = setup_base + flow
      // index: the sequential driver schedules the control plane's setup
      // events (PASE delegation timers, indices [0, setup_base)) before any
      // launch, and the global seq breaks same-instant ties in exactly that
      // order — independent of when this staging pass ran.
      engine.domain(static_cast<int>(sd)).set_setup_index(setup_base + i);
      engine.domain(static_cast<int>(sd))
          .schedule_at(f.start_time, [snd = slot.sender] { snd->start(); });
    }
  };

  // Merge deferred completions in deterministic order and replay the
  // sequential guards (first of {receiver completion, early termination}
  // wins; background flows never count against `outstanding`).
  std::vector<Completion> merged;
  const auto apply_completions = [&] {
    merged.clear();
    for (auto& dl : deferred) {
      merged.insert(merged.end(), dl.begin(), dl.end());
      dl.clear();
    }
    std::sort(merged.begin(), merged.end(),
              [&engine](const Completion& a, const Completion& b) {
                return engine.lineage().less(a.node, b.node);
              });
    for (const auto& c : merged) {
      EndpointSlot& sl = table.slot(c.slot);
      if (c.receiver_done) sl.receiver_done = true;
      stats::FlowRecord& rec = streaming ? sl.record : records[sl.flow_index];
      if (rec.finish >= 0.0 || rec.terminated) continue;
      if (c.receiver_done) {
        rec.finish = c.time;
      } else {
        rec.terminated = true;
      }
      sl.done = true;
      if (recycle) awaiting.push_back(c.slot);
      if (!rec.background && outstanding > 0) --outstanding;
    }
  };

  // Barrier-side retirement: move done slots whose sender has finished into
  // quarantine, reclaim slots that quarantined a full chunk.
  const auto recycle_at_barrier = [&] {
    std::size_t w = 0;
    for (std::size_t r = 0; r < awaiting.size(); ++r) {
      const std::uint32_t s = awaiting[r];
      EndpointSlot& sl = table.slot(s);
      if (sl.sender->finished() &&
          (sl.receiver_done || sl.sender->terminated())) {
        sl.queued_retire = true;
        retire_pending.push_back(s);
      } else {
        awaiting[w++] = s;
      }
    }
    awaiting.resize(w);
    for (std::uint32_t s : retire_ready) retire_slot(s);
    retire_ready.clear();
    std::swap(retire_ready, retire_pending);
  };

  ScenarioResult result;
  result.setup_wall_sec = seconds_since(setup_t0);

  // Same chunk targets as the sequential driver: the clock lands on the same
  // multiple of `step` when the last short flow finishes, so end_time (which
  // is fingerprinted) matches bit for bit.
  const sim::Time step = 10e-3;
  std::uint64_t next_sample = 1;
  while (outstanding > 0 && engine.now() < cfg.max_duration) {
    const sim::Time target = std::min(cfg.max_duration, engine.now() + step);
    stage_until(target);
    // Telemetry sub-boundaries, mirroring the sequential driver: run to each
    // absolute grid instant (multiplicative, drift-free), sample with every
    // domain quiescent, continue. run_until(t) executes every event <= t and
    // parks all domain clocks at t, so the event sequence matches a
    // telemetry-off run and the samples match the sequential driver's.
    if (telemetry) {
      for (sim::Time ts = telemetry->sample_time(next_sample); ts <= target;
           ts = telemetry->sample_time(++next_sample)) {
        engine.run_until(ts);
        telemetry->sample(engine.now());
      }
    }
    engine.run_until(target);
    apply_completions();
    recycle_at_barrier();
  }

  // Flush the quarantine, fold still-live slots, and account for
  // descriptors that never activated (run ended first).
  for (std::uint32_t s : retire_ready) retire_slot(s);
  retire_ready.clear();
  for (std::uint32_t s : retire_pending) retire_slot(s);
  retire_pending.clear();
  for (std::uint32_t s = 0; s < table.size(); ++s) {
    EndpointSlot& sl = table.slot(s);
    if (!sl.in_use || sl.sender == nullptr) continue;
    data_packets_sent += sl.sender->data_packets_sent();
    probes_sent += sl.sender->probes_sent();
    if (streaming) streaming->add(sl.record);
  }
  if (streaming) {
    for (std::size_t p = next_pending; p < order.size(); ++p) {
      streaming->add(record_from(flows[order[p]]));
    }
  }

  result.records = std::move(records);
  result.end_time = engine.now();
  result.fabric_drops = topo.total_drops();
  result.data_packets_sent = data_packets_sent;
  result.probes_sent = probes_sent;
  result.slab_grow_events = table.slab_grow_events();
  result.peak_live_flows = table.peak_live();
  if (streaming) result.streaming = std::move(streaming);
  if (control) {
    if (const core::ControlPlaneStats* st = control->stats()) {
      result.control = *st;
    }
  }
  std::uint64_t executed = 0, rebuilds = 0;
  for (int d = 0; d < n_dom; ++d) {
    result.heap_closure_events += engine.domain(d).heap_closure_events();
    executed += engine.domain(d).executed_events();
    rebuilds += engine.domain(d).calendar_rebuilds();
  }
  result.workers_used = part.domains;
  result.parallel_barrier_wait_sec = engine.barrier_wait_sec();
  if (telemetry) result.telemetry = telemetry->finish(result.end_time);

  if (!tbufs.empty()) {
    obs::install_tracer(nullptr);  // caller thread ran domain 0
    for (int d = 0; d < n_dom; ++d) {
      tbufs[static_cast<std::size_t>(d)]->emit_at(
          result.end_time, obs::kEngineCat, obs::EventType::kEngineSample, 0,
          static_cast<double>(engine.domain(d).executed_events()),
          static_cast<double>(engine.domain(d).heap_closure_events()),
          static_cast<std::uint32_t>(d));
    }
    std::vector<const obs::TraceBuffer*> ptrs;
    ptrs.reserve(tbufs.size());
    for (const auto& b : tbufs) ptrs.push_back(b.get());
    auto trace = std::make_shared<obs::Trace>(
        obs::merge_buffers(ptrs, &lineage_less, &engine.lineage()));
    trace->queue_names = std::move(queue_names);
    result.trace = std::move(trace);
  }

  obs::MetricsRegistry reg;
  fold_common_metrics(reg, result, built);
  reg.counter("engine.executed_events") = executed;
  reg.counter("engine.calendar_rebuilds") = rebuilds;
  reg.counter("parallel.rounds") = engine.rounds_executed();
  reg.counter("parallel.windows") = engine.windows_executed();
  reg.counter("parallel.cross_posts") = engine.cross_posts();
  reg.counter("parallel.drains") = engine.drains_executed();
  reg.counter("parallel.quiet_rounds") = engine.quiet_rounds();
  reg.gauge("parallel.horizon_width_mean") = engine.mean_horizon_width();
  if (result.telemetry) {
    reg.counter("telemetry.samples") = result.telemetry->samples;
    reg.counter("telemetry.windows") = result.telemetry->windows.size();
  }
  if (cfg.profile) {
    std::vector<const sim::Simulator*> doms;
    doms.reserve(static_cast<std::size_t>(n_dom));
    for (int d = 0; d < n_dom; ++d) doms.push_back(&engine.domain(d));
    fold_profile_metrics(reg, doms, built);
  }
  result.metrics = reg.snapshot();
  return result;
}

}  // namespace

void validate_config(const ScenarioConfig& cfg) {
  validate_generic(cfg);
  resolve_profile(cfg).validate(cfg);
}

ScenarioResult run_scenario(ScenarioConfig cfg) {
  // Fill topology-derived workload fields, then generate.
  const topo::WorkloadHints hints = topology_builder(cfg)->hints();
  cfg.traffic.num_hosts = hints.num_hosts;
  if (hints.left_hosts > 0) cfg.traffic.left_hosts = hints.left_hosts;
  cfg.traffic.host_rate_bps = hints.host_rate_bps;
  cfg.traffic.bottleneck_rate_bps = hints.bottleneck_rate_bps;
  validate_config(cfg);
  return run_scenario_with_flows(cfg, generate_flows(cfg.traffic));
}

ScenarioResult run_scenario_with_flows(ScenarioConfig cfg,
                                       std::vector<transport::Flow> flows) {
  const proto::TransportProfile& profile = resolve_profile(cfg);
  validate_generic(cfg);
  profile.validate(cfg);

  if (cfg.workers < 1) bad_config("workers must be at least 1");
  std::string fallback_reason;
  if (cfg.workers > 1) {
    if (!profile.parallel_safe()) {
      fallback_reason =
          "profile '" + std::string(profile.name()) + "' is not parallel-safe";
    } else if (std::optional<ScenarioResult> r =
                   try_run_parallel(cfg, flows, profile, &fallback_reason)) {
      return std::move(*r);
    }
    // Unusable partition (zero-lookahead cut, degenerate domain count) or an
    // unsafe profile: fall through to the sequential body, carrying the
    // reason into the result so callers can tell a silent fallback apart
    // from a parallel run.
  }

  const Clock::time_point setup_t0 = Clock::now();
  Run run;
  run.flows = std::move(flows);
  run.profile = &profile;
  run.recycle = cfg.recycle_endpoints;
  if (cfg.stats_mode == ScenarioConfig::StatsMode::kStreaming) {
    run.streaming = std::make_unique<stats::StreamingFlowStats>();
  }
  run.built =
      topology_builder(cfg)->build(run.sim, profile.make_queue_factory(cfg));
  topo::BuiltTopology& built = *run.built;
  apply_switch_tuning(built, cfg);
  if (cfg.profile) run.sim.enable_profiling();

  // Telemetry plane: sampled from the harness at chunk boundaries (below),
  // never via scheduled events, so the event path — and every golden
  // fingerprint — is identical with it on or off.
  std::unique_ptr<obs::TelemetryPlane> telemetry;
  if (cfg.telemetry.enabled) {
    telemetry = std::make_unique<obs::TelemetryPlane>(built, cfg.telemetry);
    run.telemetry = telemetry.get();
  }

  proto::RunContext ctx{run.sim, built,
                        static_cast<const proto::ProfileParams&>(cfg)};
  ctx.base_rtt = proto::estimate_base_rtt(built.topo(), built.host_rate_bps());
  // Deadline workloads arbitrate/schedule EDF; others SJF.
  for (const auto& f : run.flows) {
    ctx.any_deadline = ctx.any_deadline || f.has_deadline();
  }
  run.ctx = &ctx;

  run.control = profile.make_control_plane(ctx);
  ctx.control = run.control.get();
  run.table.init(profile);

  // Pre-size the engine and the packet pool from the in-flight population:
  // a few events per host (tx-done, delivery, timers, control) plus the one
  // chained launch event (see launch_batch — launches no longer sit in the
  // calendar all at once). Reserving here means steady-state scheduling
  // never grows a slot chunk or rebuilds the calendar mid-burst, and the
  // first wave of sends finds a warm packet pool.
  const std::size_t num_hosts = built.topo().num_hosts();
  run.sim.reserve(num_hosts * 8 + 1024);
  net::PacketPool::local().prewarm(num_hosts * 16 + 256);

  // Tracing: one preallocated ring for the whole (single-domain) run,
  // installed for the duration of the event loop. When disabled nothing is
  // allocated and the thread-local stays null.
  std::unique_ptr<obs::TraceBuffer> tbuf;
  std::vector<std::string> queue_names;
  if (cfg.trace.enabled) {
    queue_names = obs::label_fabric_queues(built.topo());
    tbuf = std::make_unique<obs::TraceBuffer>(cfg.trace.buffer_capacity,
                                              cfg.trace.categories);
  }
  obs::ScopedTracer scoped_tracer(tbuf.get());

  // Map generator host indices onto node ids; in exact mode pre-create the
  // records (flows that never launch keep finish = -1, as always).
  run.activated.assign(run.flows.size(), false);
  if (!run.streaming) run.records.reserve(run.flows.size());
  for (auto& f : run.flows) {
    f.src = built.topo().host(static_cast<std::size_t>(f.src))->id();
    f.dst = built.topo().host(static_cast<std::size_t>(f.dst))->id();
    if (!run.streaming) run.records.push_back(record_from(f));
    if (!f.background) ++run.outstanding;
  }
  prewarm_demux(built.topo(), run.flows);

  // Schedule flow launches as a chain in start-time order (stable sort:
  // same-instant flows keep generation order, which the up-front scheduler
  // expressed through consecutive setup seqs). The chain closure fits the
  // simulator's inline event payload, so launches allocate nothing.
  run.launch_order.resize(run.flows.size());
  for (std::size_t i = 0; i < run.launch_order.size(); ++i) {
    run.launch_order[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(run.launch_order.begin(), run.launch_order.end(),
                   [&run](std::uint32_t a, std::uint32_t b) {
                     return run.flows[a].start_time < run.flows[b].start_time;
                   });
  if (!run.launch_order.empty()) {
    run.sim.schedule_at(run.flows[run.launch_order[0]].start_time,
                        [&run] { launch_batch(run, 0); });
  }

  ScenarioResult result;
  result.setup_wall_sec = seconds_since(setup_t0);

  // Run until every short flow completes (or the hard cap), reclaiming
  // quarantined endpoint slots at every chunk boundary.
  const sim::Time step = 10e-3;
  std::uint64_t next_sample = 1;
  while (run.outstanding > 0 && run.sim.now() < cfg.max_duration) {
    const sim::Time before = run.sim.now();
    const sim::Time target = std::min(cfg.max_duration, run.sim.now() + step);
    // Telemetry sub-boundaries: run to each absolute grid instant inside the
    // chunk (computed multiplicatively, so the grid never drifts), sample
    // while the engine is quiescent, then continue to the chunk target.
    // run(t) executes every event <= t and leaves the clock at t, so the
    // executed-event sequence is identical to a telemetry-off run.
    if (run.telemetry != nullptr) {
      for (sim::Time ts = run.telemetry->sample_time(next_sample);
           ts <= target; ts = run.telemetry->sample_time(++next_sample)) {
        run.sim.run(ts);
        run.telemetry->sample(run.sim.now());
      }
    }
    run.sim.run(target);
    recycle_tick(run);
    if (run.sim.now() == before && run.sim.pending_events() == 0) break;
  }

  finalize_flows(run);

  result.records = std::move(run.records);
  result.end_time = run.sim.now();
  result.fabric_drops = built.topo().total_drops();
  result.data_packets_sent = run.data_packets_sent;
  result.probes_sent = run.probes_sent;
  result.slab_grow_events = run.table.slab_grow_events();
  result.peak_live_flows = run.table.peak_live();
  if (run.streaming) result.streaming = std::move(run.streaming);
  if (run.control) {
    if (const core::ControlPlaneStats* st = run.control->stats()) {
      result.control = *st;
    }
  }
  result.heap_closure_events = run.sim.heap_closure_events();
  result.workers_used = 1;
  result.parallel_fallback_reason = std::move(fallback_reason);
  if (telemetry) result.telemetry = telemetry->finish(result.end_time);

  if (tbuf) {
    tbuf->emit_at(result.end_time, obs::kEngineCat,
                  obs::EventType::kEngineSample, 0,
                  static_cast<double>(run.sim.executed_events()),
                  static_cast<double>(run.sim.heap_closure_events()),
                  /*a=*/0);
    auto trace = std::make_shared<obs::Trace>(
        obs::merge_buffers({tbuf.get()}, nullptr, nullptr));
    trace->queue_names = std::move(queue_names);
    result.trace = std::move(trace);
  }

  obs::MetricsRegistry reg;
  fold_common_metrics(reg, result, built);
  reg.counter("engine.executed_events") = run.sim.executed_events();
  reg.counter("engine.calendar_rebuilds") = run.sim.calendar_rebuilds();
  if (result.telemetry) {
    reg.counter("telemetry.samples") = result.telemetry->samples;
    reg.counter("telemetry.windows") = result.telemetry->windows.size();
  }
  if (cfg.profile) fold_profile_metrics(reg, {&run.sim}, built);
  result.metrics = reg.snapshot();
  return result;
}

}  // namespace pase::workload
