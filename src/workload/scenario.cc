#include "workload/scenario.h"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "net/packet.h"
#include "proto/registry.h"
#include "proto/transport_profile.h"
#include "topo/builder.h"

namespace pase::workload {

namespace {

const proto::TransportProfile& resolve_profile(const ScenarioConfig& cfg) {
  if (!cfg.profile_name.empty()) {
    if (const proto::TransportProfile* p =
            proto::profile_for(cfg.profile_name)) {
      return *p;
    }
    throw std::invalid_argument("unknown transport profile '" +
                                cfg.profile_name + "'");
  }
  return proto::profile_for(cfg.protocol);
}

std::unique_ptr<topo::TopologyBuilder> topology_builder(
    const ScenarioConfig& cfg) {
  if (cfg.topology == ScenarioConfig::TopologyKind::kSingleRack) {
    return std::make_unique<topo::SingleRackBuilder>(cfg.rack);
  }
  return std::make_unique<topo::ThreeTierBuilder>(cfg.tree);
}

[[noreturn]] void bad_config(const std::string& what) {
  throw std::invalid_argument("invalid scenario config: " + what);
}

// Generic (profile-independent) sanity checks.
void validate_generic(const ScenarioConfig& cfg) {
  if (!(cfg.max_duration > 0.0)) {
    bad_config("max_duration must be positive, got " +
               std::to_string(cfg.max_duration));
  }
  if (cfg.topology == ScenarioConfig::TopologyKind::kSingleRack) {
    if (cfg.rack.num_hosts < 2) {
      bad_config("single-rack topology needs at least 2 hosts, got " +
                 std::to_string(cfg.rack.num_hosts));
    }
    if (!(cfg.rack.host_rate_bps > 0.0)) {
      bad_config("rack.host_rate_bps must be positive");
    }
  } else {
    if (cfg.tree.num_tors < 1 || cfg.tree.hosts_per_tor < 1 ||
        cfg.tree.tors_per_agg < 1) {
      bad_config("three-tier dimensions must all be at least 1");
    }
    if (cfg.tree.num_tors % cfg.tree.tors_per_agg != 0) {
      bad_config("num_tors (" + std::to_string(cfg.tree.num_tors) +
                 ") must be a multiple of tors_per_agg (" +
                 std::to_string(cfg.tree.tors_per_agg) + ")");
    }
    if (cfg.tree.num_tors * cfg.tree.hosts_per_tor < 2) {
      bad_config("three-tier topology needs at least 2 hosts");
    }
    if (!(cfg.tree.host_rate_bps > 0.0) || !(cfg.tree.fabric_rate_bps > 0.0)) {
      bad_config("tree link rates must be positive");
    }
  }
  const WorkloadConfig& t = cfg.traffic;
  if (!(t.load > 0.0)) {
    bad_config("traffic.load must be positive, got " + std::to_string(t.load));
  }
  if (t.size_min_bytes <= 0 || t.size_max_bytes < t.size_min_bytes) {
    bad_config("flow size range [" + std::to_string(t.size_min_bytes) + ", " +
               std::to_string(t.size_max_bytes) +
               "] is empty or non-positive");
  }
  if (t.deadline_min < 0.0 || t.deadline_max < t.deadline_min) {
    bad_config("deadline range [" + std::to_string(t.deadline_min) + ", " +
               std::to_string(t.deadline_max) + "] is invalid");
  }
  if (t.pattern == Pattern::kLeftRight &&
      cfg.topology != ScenarioConfig::TopologyKind::kThreeTier) {
    bad_config("left-right traffic needs the three-tier topology");
  }
}

struct Run {
  sim::Simulator sim;
  std::unique_ptr<topo::BuiltTopology> built;
  std::unique_ptr<proto::ControlPlane> control;
  std::vector<std::unique_ptr<transport::Sender>> senders;
  std::vector<std::unique_ptr<transport::Receiver>> receivers;
  std::vector<stats::FlowRecord> records;
  std::unordered_map<net::FlowId, std::size_t> record_of;
  std::size_t outstanding = 0;  // short flows not yet finished
  // Flow table plus profile/context pointers, so a launch event captures
  // only {&run, index} — 16 bytes, inside the simulator's inline payload.
  std::vector<transport::Flow> flows;
  const proto::TransportProfile* profile = nullptr;
  proto::RunContext* ctx = nullptr;
};

void launch_flow(Run& run, const proto::TransportProfile& profile,
                 proto::RunContext& ctx, const transport::Flow& flow) {
  topo::Topology& topo = ctx.built.topo();
  net::Host* src = static_cast<net::Host*>(topo.node(flow.src));
  net::Host* dst = static_cast<net::Host*>(topo.node(flow.dst));
  assert(src && dst);

  auto receiver = profile.make_receiver(ctx, flow, *dst);
  auto sender = profile.make_sender(ctx, flow, *src);

  const std::size_t rec_idx = run.record_of.at(flow.id);
  receiver->on_complete = [&run, rec_idx](transport::Receiver& r) {
    auto& rec = run.records[rec_idx];
    if (rec.finish < 0.0 && !rec.terminated) {
      rec.finish = r.completion_time();
      if (!rec.background && run.outstanding > 0) --run.outstanding;
    }
  };
  sender->on_complete = [&run, rec_idx](transport::Sender& s) {
    auto& rec = run.records[rec_idx];
    if (s.terminated() && rec.finish < 0.0 && !rec.terminated) {
      rec.terminated = true;
      if (!rec.background && run.outstanding > 0) --run.outstanding;
    }
  };

  profile.before_flow_start(ctx, *sender, *receiver);
  src->register_flow(flow.id, sender.get());
  dst->register_flow(flow.id, receiver.get());
  sender->start();

  run.senders.push_back(std::move(sender));
  run.receivers.push_back(std::move(receiver));
}

}  // namespace

void validate_config(const ScenarioConfig& cfg) {
  validate_generic(cfg);
  resolve_profile(cfg).validate(cfg);
}

ScenarioResult run_scenario(ScenarioConfig cfg) {
  // Fill topology-derived workload fields, then generate.
  const topo::WorkloadHints hints = topology_builder(cfg)->hints();
  cfg.traffic.num_hosts = hints.num_hosts;
  if (hints.left_hosts > 0) cfg.traffic.left_hosts = hints.left_hosts;
  cfg.traffic.host_rate_bps = hints.host_rate_bps;
  cfg.traffic.bottleneck_rate_bps = hints.bottleneck_rate_bps;
  validate_config(cfg);
  return run_scenario_with_flows(cfg, generate_flows(cfg.traffic));
}

ScenarioResult run_scenario_with_flows(ScenarioConfig cfg,
                                       std::vector<transport::Flow> flows) {
  const proto::TransportProfile& profile = resolve_profile(cfg);
  validate_generic(cfg);
  profile.validate(cfg);

  Run run;
  run.flows = std::move(flows);
  run.profile = &profile;
  run.built =
      topology_builder(cfg)->build(run.sim, profile.make_queue_factory(cfg));
  topo::BuiltTopology& built = *run.built;

  proto::RunContext ctx{run.sim, built,
                        static_cast<const proto::ProfileParams&>(cfg)};
  ctx.base_rtt = proto::estimate_base_rtt(built.topo(), built.host_rate_bps());
  // Deadline workloads arbitrate/schedule EDF; others SJF.
  for (const auto& f : run.flows) {
    ctx.any_deadline = ctx.any_deadline || f.has_deadline();
  }
  run.ctx = &ctx;

  run.control = profile.make_control_plane(ctx);
  ctx.control = run.control.get();

  // Pre-size the engine and the packet pool from the workload: every launch
  // event is staged up front (one pending event per flow), and the in-flight
  // population beyond that is bounded by a few events per host (tx-done,
  // delivery, timers, control). Reserving here means steady-state scheduling
  // never grows a slot chunk or rebuilds the calendar mid-burst, and the
  // first wave of sends finds a warm packet pool.
  const std::size_t num_hosts = built.topo().num_hosts();
  run.sim.reserve(run.flows.size() + num_hosts * 8 + 64);
  net::PacketPool::local().prewarm(num_hosts * 16 + 256);

  // Map generator host indices onto node ids and set up records.
  run.records.reserve(run.flows.size());
  for (auto& f : run.flows) {
    f.src = built.topo().host(static_cast<std::size_t>(f.src))->id();
    f.dst = built.topo().host(static_cast<std::size_t>(f.dst))->id();
    stats::FlowRecord rec;
    rec.id = f.id;
    rec.size_bytes = f.size_bytes;
    rec.start = f.start_time;
    rec.deadline = f.deadline;
    rec.background = f.background;
    run.record_of[f.id] = run.records.size();
    run.records.push_back(rec);
    if (!f.background) ++run.outstanding;
  }

  // Schedule flow launches. The closure fits the simulator's inline event
  // payload, so even the launch burst allocates nothing per event.
  for (std::size_t i = 0; i < run.flows.size(); ++i) {
    run.sim.schedule_at(run.flows[i].start_time, [&run, i] {
      launch_flow(run, *run.profile, *run.ctx, run.flows[i]);
    });
  }

  // Run until every short flow completes (or the hard cap).
  const sim::Time step = 10e-3;
  while (run.outstanding > 0 && run.sim.now() < cfg.max_duration) {
    const sim::Time before = run.sim.now();
    run.sim.run(std::min(cfg.max_duration, run.sim.now() + step));
    if (run.sim.now() == before && run.sim.pending_events() == 0) break;
  }

  ScenarioResult result;
  result.records = std::move(run.records);
  result.end_time = run.sim.now();
  result.fabric_drops = built.topo().total_drops();
  for (const auto& s : run.senders) {
    result.data_packets_sent += s->data_packets_sent();
    result.probes_sent += s->probes_sent();
  }
  if (run.control) {
    if (const core::ControlPlaneStats* st = run.control->stats()) {
      result.control = *st;
    }
  }
  return result;
}

}  // namespace pase::workload
