// The paper's baseline simulation topology (Fig. 8): a 3-tier tree of
// 4 ToR switches x 40 hosts, 2 aggregation switches, 1 core switch.
// Host links are 1 Gbps, fabric links 10 Gbps, giving 4:1 oversubscription
// at the ToR uplink. End-to-end propagation RTT via the core is 300 us.
#pragma once

#include <memory>
#include <vector>

#include "topo/topology.h"

namespace pase::topo {

struct ThreeTierConfig {
  int num_tors = 4;
  int hosts_per_tor = 40;
  int tors_per_agg = 2;
  double host_rate_bps = 1e9;
  double fabric_rate_bps = 10e9;
  // 25 us per hop x 12 hops (6 each way) = 300 us core RTT, matching §4.1.
  sim::Time per_link_delay = 25e-6;
};

struct ThreeTier {
  std::unique_ptr<Topology> topo;
  std::vector<net::Switch*> tors;
  std::vector<net::Switch*> aggs;
  net::Switch* core = nullptr;
  ThreeTierConfig config;

  int num_hosts() const { return config.num_tors * config.hosts_per_tor; }
  // Hosts are created rack-by-rack: host i lives under ToR i / hosts_per_tor.
  int tor_of_host(int host_index) const {
    return host_index / config.hosts_per_tor;
  }
  net::Switch* agg_of_tor(int tor_index) const {
    return aggs[static_cast<std::size_t>(tor_index / config.tors_per_agg)];
  }
  // Hosts in the left subtree are those under aggregation switch 0.
  bool in_left_subtree(int host_index) const {
    return tor_of_host(host_index) / config.tors_per_agg == 0;
  }
};

ThreeTier build_three_tier(sim::Simulator& sim, const ThreeTierConfig& cfg,
                           const QueueFactory& make_queue);

}  // namespace pase::topo
