#include "topo/single_rack.h"

#include <string>

namespace pase::topo {

SingleRack build_single_rack(sim::Simulator& sim, const SingleRackConfig& cfg,
                             const QueueFactory& make_queue) {
  SingleRack r;
  r.config = cfg;
  r.topo = std::make_unique<Topology>(sim);
  r.tor = r.topo->add_switch("tor");
  for (int h = 0; h < cfg.num_hosts; ++h) {
    r.topo->add_host("h" + std::to_string(h), r.tor, cfg.host_rate_bps,
                     cfg.per_link_delay, make_queue);
  }
  r.topo->build_routes();
  return r;
}

}  // namespace pase::topo
