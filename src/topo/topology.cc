#include "topo/topology.h"

#include <deque>
#include <stdexcept>
#include <utility>

namespace pase::topo {

net::Switch* Topology::add_switch(const std::string& name) {
  auto sw = std::make_unique<net::Switch>(next_id(), name);
  net::Switch* raw = sw.get();
  switches_.push_back(std::move(sw));
  nodes_.push_back(raw);
  adj_.emplace_back();
  return raw;
}

net::Host* Topology::add_host(const std::string& name, net::Switch* tor,
                              double rate_bps, sim::Time prop_delay,
                              const QueueFactory& make_queue) {
  auto host = std::make_unique<net::Host>(next_id(), name);
  net::Host* raw = host.get();
  hosts_.push_back(std::move(host));
  nodes_.push_back(raw);
  adj_.emplace_back();

  // Uplink host -> tor.
  raw->attach_uplink(
      make_queue(rate_bps),
      std::make_unique<net::Link>(*sim_, rate_bps, prop_delay,
                                  name + "->" + tor->name()),
      tor);
  // Downlink tor -> host.
  const int port = tor->add_port(
      make_queue(rate_bps),
      std::make_unique<net::Link>(*sim_, rate_bps, prop_delay,
                                  tor->name() + "->" + name),
      raw);
  tor->set_route(raw->id(), port);

  add_edge_pair(raw->id(), tor->id(), prop_delay);
  return raw;
}

void Topology::connect_switches(net::Switch* a, net::Switch* b,
                                double rate_bps, sim::Time prop_delay,
                                const QueueFactory& make_queue) {
  a->add_port(make_queue(rate_bps),
              std::make_unique<net::Link>(*sim_, rate_bps, prop_delay,
                                          a->name() + "->" + b->name()),
              b);
  b->add_port(make_queue(rate_bps),
              std::make_unique<net::Link>(*sim_, rate_bps, prop_delay,
                                          b->name() + "->" + a->name()),
              a);
  add_edge_pair(a->id(), b->id(), prop_delay);
}

void Topology::add_edge_pair(net::NodeId a, net::NodeId b, sim::Time delay) {
  adj_[static_cast<std::size_t>(a)].push_back(HalfEdge{b, delay});
  adj_[static_cast<std::size_t>(b)].push_back(HalfEdge{a, delay});
}

void Topology::set_partition_group(net::NodeId id, int group) {
  if (static_cast<std::size_t>(id) >= partition_group_.size()) {
    partition_group_.resize(static_cast<std::size_t>(id) + 1, -1);
  }
  partition_group_[static_cast<std::size_t>(id)] = group;
}

net::Node* Topology::node(net::NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) return nullptr;
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<std::int32_t> Topology::hop_distances(net::NodeId to) const {
  std::vector<std::int32_t> dist(nodes_.size(), -1);
  std::deque<net::NodeId> frontier{to};
  dist[static_cast<std::size_t>(to)] = 0;
  while (!frontier.empty()) {
    const net::NodeId cur = frontier.front();
    frontier.pop_front();
    const std::int32_t d = dist[static_cast<std::size_t>(cur)];
    for (const HalfEdge& e : adj_[static_cast<std::size_t>(cur)]) {
      auto& dn = dist[static_cast<std::size_t>(e.to)];
      if (dn != -1) continue;
      dn = d + 1;
      frontier.push_back(e.to);
    }
  }
  return dist;
}

void Topology::build_routes() {
  if (route_installer_) {
    route_installer_(*this);
  } else {
    install_bfs_routes();
  }
  finalize_switch_config();
}

void Topology::build_routes_bfs() {
  install_bfs_routes();
  finalize_switch_config();
}

void Topology::install_bfs_routes() {
  // Per destination: one BFS yields min-hop distances, then every switch
  // installs all ports whose neighbor is strictly closer to the destination
  // (in port order, so tables depend only on construction order). A single
  // qualifying port is a plain table entry — tree topologies produce exactly
  // the unique-path tables the single-path router did.
  std::vector<std::vector<int>> ports;  // scratch, reused across switches
  for (const net::Node* dst : nodes_) {
    const std::vector<std::int32_t> dist = hop_distances(dst->id());
    for (auto& sw : switches_) {
      if (sw->id() == dst->id()) continue;
      const std::int32_t d_sw = dist[static_cast<std::size_t>(sw->id())];
      if (d_sw < 0) {
        throw std::runtime_error("topology is disconnected: no path " +
                                 sw->name() + " -> " + dst->name());
      }
      std::vector<int> eq_ports;
      for (int port = 0; port < sw->num_ports(); ++port) {
        const net::NodeId n = sw->port_neighbor(port)->id();
        if (dist[static_cast<std::size_t>(n)] == d_sw - 1) {
          eq_ports.push_back(port);
        }
      }
      if (eq_ports.empty()) {
        throw std::runtime_error("topology is disconnected: no path " +
                                 sw->name() + " -> " + dst->name());
      }
      sw->set_route_group(dst->id(), eq_ports);
    }
  }
}

void Topology::finalize_switch_config() {
  for (auto& sw : switches_) {
    sw->set_ecmp_seed(ecmp_seed_);
    sw->set_name_resolver([this](net::NodeId id) {
      const net::Node* n = node(id);
      return n ? n->name() : "#" + std::to_string(id);
    });
  }
}

std::size_t Topology::route_table_bytes() const {
  std::size_t total = 0;
  for (const auto& sw : switches_) total += sw->route_state_bytes();
  return total;
}

sim::Time Topology::propagation_delay(net::NodeId from, net::NodeId to) const {
  if (from == to) return 0.0;
  const std::vector<std::int32_t> dist = hop_distances(to);
  if (from < 0 || static_cast<std::size_t>(from) >= dist.size() ||
      dist[static_cast<std::size_t>(from)] < 0) {
    throw std::runtime_error("no path between nodes");
  }
  // Walk one deterministic min-hop path: at each node take the first
  // adjacency (construction order) that is strictly closer to `to`.
  sim::Time total = 0.0;
  net::NodeId cur = from;
  while (cur != to) {
    const std::int32_t d = dist[static_cast<std::size_t>(cur)];
    bool stepped = false;
    for (const HalfEdge& e : adj_[static_cast<std::size_t>(cur)]) {
      if (dist[static_cast<std::size_t>(e.to)] == d - 1) {
        total += e.delay;
        cur = e.to;
        stepped = true;
        break;
      }
    }
    if (!stepped) {
      throw std::runtime_error("routing loop detected");
    }
  }
  return total;
}

void Topology::for_each_queue(
    const std::function<void(net::Queue&)>& fn) const {
  for (const auto& h : hosts_) fn(h->uplink_queue());
  for (const auto& sw : switches_) {
    for (int p = 0; p < sw->num_ports(); ++p) fn(sw->port_queue(p));
  }
}

std::uint64_t Topology::total_drops() const {
  std::uint64_t n = 0;
  for_each_queue([&n](net::Queue& q) { n += q.drops(); });
  return n;
}

std::uint64_t Topology::total_marks() const {
  std::uint64_t n = 0;
  for_each_queue([&n](net::Queue& q) { n += q.marks(); });
  return n;
}

std::uint64_t Topology::total_enqueues() const {
  std::uint64_t n = 0;
  for_each_queue([&n](net::Queue& q) { n += q.enqueues(); });
  return n;
}

}  // namespace pase::topo
