#include "topo/topology.h"

#include <cassert>
#include <deque>
#include <stdexcept>
#include <utility>

namespace pase::topo {

net::Switch* Topology::add_switch(const std::string& name) {
  auto sw = std::make_unique<net::Switch>(next_id(), name);
  net::Switch* raw = sw.get();
  switches_.push_back(std::move(sw));
  nodes_.push_back(raw);
  return raw;
}

net::Host* Topology::add_host(const std::string& name, net::Switch* tor,
                              double rate_bps, sim::Time prop_delay,
                              const QueueFactory& make_queue) {
  auto host = std::make_unique<net::Host>(next_id(), name);
  net::Host* raw = host.get();
  hosts_.push_back(std::move(host));
  nodes_.push_back(raw);

  // Uplink host -> tor.
  raw->attach_uplink(
      make_queue(rate_bps),
      std::make_unique<net::Link>(*sim_, rate_bps, prop_delay,
                                  name + "->" + tor->name()),
      tor);
  // Downlink tor -> host.
  const int port = tor->add_port(
      make_queue(rate_bps),
      std::make_unique<net::Link>(*sim_, rate_bps, prop_delay,
                                  tor->name() + "->" + name),
      raw);
  tor->set_route(raw->id(), port);

  edges_.push_back(Edge{raw->id(), tor->id(), prop_delay});
  edges_.push_back(Edge{tor->id(), raw->id(), prop_delay});
  return raw;
}

void Topology::connect_switches(net::Switch* a, net::Switch* b,
                                double rate_bps, sim::Time prop_delay,
                                const QueueFactory& make_queue) {
  a->add_port(make_queue(rate_bps),
              std::make_unique<net::Link>(*sim_, rate_bps, prop_delay,
                                          a->name() + "->" + b->name()),
              b);
  b->add_port(make_queue(rate_bps),
              std::make_unique<net::Link>(*sim_, rate_bps, prop_delay,
                                          b->name() + "->" + a->name()),
              a);
  edges_.push_back(Edge{a->id(), b->id(), prop_delay});
  edges_.push_back(Edge{b->id(), a->id(), prop_delay});
}

net::Node* Topology::node(net::NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) return nullptr;
  return nodes_[static_cast<std::size_t>(id)];
}

net::NodeId Topology::next_hop(net::NodeId from, net::NodeId to) const {
  if (from == to) return to;
  // BFS from `to` backwards over the (symmetric) edge set; first neighbor of
  // `from` discovered on a shortest path is the next hop.
  std::vector<net::NodeId> parent(nodes_.size(), net::kInvalidNode);
  std::deque<net::NodeId> frontier{to};
  parent[static_cast<std::size_t>(to)] = to;
  while (!frontier.empty()) {
    const net::NodeId cur = frontier.front();
    frontier.pop_front();
    for (const Edge& e : edges_) {
      if (e.from != cur) continue;
      auto& p = parent[static_cast<std::size_t>(e.to)];
      if (p != net::kInvalidNode) continue;
      p = cur;
      if (e.to == from) return cur;
      frontier.push_back(e.to);
    }
  }
  return net::kInvalidNode;
}

void Topology::build_routes() {
  // For every switch and every destination node, point the route at the port
  // whose neighbor is the next hop on the shortest path.
  for (auto& sw : switches_) {
    for (net::Node* dst : nodes_) {
      if (dst->id() == sw->id()) continue;
      const net::NodeId hop = next_hop(sw->id(), dst->id());
      if (hop == net::kInvalidNode) {
        throw std::runtime_error("topology is disconnected: no path " +
                                 sw->name() + " -> " + dst->name());
      }
      for (int port = 0; port < sw->num_ports(); ++port) {
        if (sw->port_neighbor(port)->id() == hop) {
          sw->set_route(dst->id(), port);
          break;
        }
      }
    }
  }
}

sim::Time Topology::propagation_delay(net::NodeId from, net::NodeId to) const {
  sim::Time total = 0.0;
  net::NodeId cur = from;
  std::size_t hops = 0;
  while (cur != to) {
    const net::NodeId hop = next_hop(cur, to);
    if (hop == net::kInvalidNode) {
      throw std::runtime_error("no path between nodes");
    }
    for (const Edge& e : edges_) {
      if (e.from == cur && e.to == hop) {
        total += e.delay;
        break;
      }
    }
    cur = hop;
    if (++hops > nodes_.size()) {
      throw std::runtime_error("routing loop detected");
    }
  }
  return total;
}

void Topology::for_each_queue(
    const std::function<void(net::Queue&)>& fn) const {
  for (const auto& h : hosts_) fn(h->uplink_queue());
  for (const auto& sw : switches_) {
    for (int p = 0; p < sw->num_ports(); ++p) fn(sw->port_queue(p));
  }
}

std::uint64_t Topology::total_drops() const {
  std::uint64_t n = 0;
  for_each_queue([&n](net::Queue& q) { n += q.drops(); });
  return n;
}

std::uint64_t Topology::total_marks() const {
  std::uint64_t n = 0;
  for_each_queue([&n](net::Queue& q) { n += q.marks(); });
  return n;
}

std::uint64_t Topology::total_enqueues() const {
  std::uint64_t n = 0;
  for_each_queue([&n](net::Queue& q) { n += q.enqueues(); });
  return n;
}

}  // namespace pase::topo
