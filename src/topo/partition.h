// Deterministic topology partitioner for the conservative parallel engine.
//
// Hosts are first grouped into atomic units: maximal runs of consecutive
// creation indices sharing a partition group (a fat-tree pod), with
// ungrouped hosts as singleton units. Units are split into contiguous
// equal blocks — so on group-free topologies this degenerates exactly to
// the old per-host block split, while grouped topologies never see a group
// straddle a domain boundary. Switches carrying a partition group follow
// their group's hosts; the rest (ToRs, cores) join the domain of their
// lowest-id already-assigned neighbor, which pulls a ToR into the domain of
// its first host and core switches toward the leftmost subtree below them.
// Every link whose endpoints land in different domains is a cut link; the
// minimum propagation delay over the cuts is the engine's lookahead. A
// partition with a zero-delay cut link (or a single domain) is unusable and
// the scenario harness falls back to sequential execution.
#pragma once

#include <vector>

#include "topo/topology.h"

namespace pase::topo {

struct Partition {
  int domains = 1;
  std::vector<int> domain_of;  // indexed by NodeId
  struct CutLink {
    net::Link* link;
    int src_domain;  // domain of the node that transmits on the link
    int dst_domain;
  };
  std::vector<CutLink> cut_links;
  // min prop delay over cut links; infinity when there are no cuts.
  sim::Time lookahead = sim::kTimeInfinity;

  // True when the conservative engine can run this partition: more than one
  // domain and strictly positive lookahead on every cut edge.
  bool usable() const { return domains > 1 && lookahead > 0.0; }

  int domain_of_node(net::NodeId id) const {
    return domain_of[static_cast<std::size_t>(id)];
  }
};

// Splits `topo` into at most `domains` domains (clamped to the number of
// atomic host units — the host count when no partition groups are set).
// Deterministic: depends only on the topology's creation order and groups.
Partition partition_topology(const Topology& topo, int domains);

}  // namespace pase::topo
