// Deterministic topology partitioner for the conservative parallel engine.
//
// Hosts are split into contiguous equal blocks by creation index (hosts
// under the same ToR are created together, so racks stay intact whenever
// the domain count divides them); each switch then joins the domain of its
// lowest-id already-assigned neighbor, which pulls a ToR into the domain of
// its first host and aggregation/core switches toward the leftmost subtree
// below them. Every link whose endpoints land in different domains is a cut
// link; the minimum propagation delay over the cuts is the engine's
// lookahead. A partition with a zero-delay cut link (or a single domain) is
// unusable and the scenario harness falls back to sequential execution.
#pragma once

#include <vector>

#include "topo/topology.h"

namespace pase::topo {

struct Partition {
  int domains = 1;
  std::vector<int> domain_of;  // indexed by NodeId
  struct CutLink {
    net::Link* link;
    int src_domain;  // domain of the node that transmits on the link
    int dst_domain;
  };
  std::vector<CutLink> cut_links;
  // min prop delay over cut links; infinity when there are no cuts.
  sim::Time lookahead = sim::kTimeInfinity;

  // True when the conservative engine can run this partition: more than one
  // domain and strictly positive lookahead on every cut edge.
  bool usable() const { return domains > 1 && lookahead > 0.0; }

  int domain_of_node(net::NodeId id) const {
    return domain_of[static_cast<std::size_t>(id)];
  }
};

// Splits `topo` into at most `domains` domains (clamped to the host count).
// Deterministic: depends only on the topology's creation order.
Partition partition_topology(const Topology& topo, int domains);

}  // namespace pase::topo
