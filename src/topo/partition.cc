#include "topo/partition.h"

#include <algorithm>

#include "sim/dcheck.h"

namespace pase::topo {

Partition partition_topology(const Topology& topo, int domains) {
  const auto& hosts = topo.hosts();
  const auto& switches = topo.switches();
  const std::size_t num_nodes = hosts.size() + switches.size();

  // Atomic units: maximal runs of consecutive hosts sharing a (non-negative)
  // partition group; ungrouped hosts are singletons. unit_of_host[i] is the
  // unit index of host creation-index i — nondecreasing by construction.
  std::vector<std::size_t> unit_of_host(hosts.size(), 0);
  std::size_t num_units = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (i > 0) {
      const int g = topo.partition_group(hosts[i]->id());
      const int prev = topo.partition_group(hosts[i - 1]->id());
      if (g < 0 || g != prev) ++num_units;
    }
    unit_of_host[i] = num_units;
  }
  if (!hosts.empty()) ++num_units;

  Partition part;
  part.domains = std::max(
      1, std::min(domains, static_cast<int>(num_units)));
  part.domain_of.assign(num_nodes, -1);
  if (part.domains <= 1) {
    std::fill(part.domain_of.begin(), part.domain_of.end(), 0);
    return part;
  }

  // Units: contiguous blocks, sizes differing by at most one. Unit u of U
  // goes to floor(u * D / U) — identical to the old per-host split when
  // every host is its own unit.
  std::vector<int> domain_of_unit(num_units);
  for (std::size_t u = 0; u < num_units; ++u) {
    domain_of_unit[u] = static_cast<int>(
        u * static_cast<std::size_t>(part.domains) / num_units);
  }
  // Remember where each group's first host landed so grouped switches can
  // follow their group (groups are small dense ints — pods — but tolerate
  // arbitrary values).
  std::vector<std::pair<int, int>> group_domain;  // (group, domain), sorted
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const int d = domain_of_unit[unit_of_host[i]];
    part.domain_of[static_cast<std::size_t>(hosts[i]->id())] = d;
    const int g = topo.partition_group(hosts[i]->id());
    if (g >= 0) {
      const auto it = std::lower_bound(
          group_domain.begin(), group_domain.end(), std::pair<int, int>{g, -1},
          [](const auto& a, const auto& b) { return a.first < b.first; });
      if (it == group_domain.end() || it->first != g) {
        group_domain.insert(it, {g, d});
      }
    }
  }

  // Grouped switches (pod aggs/edges) follow their group's hosts, keeping
  // whole pods inside one domain so the pod boundary is the cut.
  for (const auto& sw : switches) {
    const int g = topo.partition_group(sw->id());
    if (g < 0) continue;
    const auto it = std::lower_bound(
        group_domain.begin(), group_domain.end(), std::pair<int, int>{g, -1},
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it != group_domain.end() && it->first == g) {
      part.domain_of[static_cast<std::size_t>(sw->id())] = it->second;
    }
  }

  // Undirected neighbor sets from the link graph (host uplinks plus switch
  // ports; downlinks mirror uplinks, so each adjacency appears from both
  // sides anyway).
  std::vector<std::vector<net::NodeId>> adj(num_nodes);
  const auto add_edge = [&](net::NodeId a, net::NodeId b) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  };
  for (const auto& h : hosts) add_edge(h->id(), h->uplink().destination()->id());
  for (const auto& sw : switches) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      add_edge(sw->id(), sw->port_neighbor(p)->id());
    }
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // Remaining switches (ToRs, cores) join the domain of their lowest-id
  // assigned neighbor; repeat until stable (a pass per tree tier suffices,
  // but the loop is general).
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& sw : switches) {
      const std::size_t id = static_cast<std::size_t>(sw->id());
      if (part.domain_of[id] != -1) continue;
      for (const net::NodeId n : adj[id]) {
        const int nd = part.domain_of[static_cast<std::size_t>(n)];
        if (nd != -1) {
          part.domain_of[id] = nd;
          progress = true;
          break;
        }
      }
    }
  }
  // Disconnected switches (none in the built topologies) default to 0.
  for (auto& d : part.domain_of) {
    if (d == -1) d = 0;
  }

  // Cut links, from the transmitting side: host uplinks and switch ports.
  const auto consider = [&](net::Link& l, net::NodeId src) {
    const int sd = part.domain_of[static_cast<std::size_t>(src)];
    const int dd =
        part.domain_of[static_cast<std::size_t>(l.destination()->id())];
    if (sd == dd) return;
    part.cut_links.push_back(Partition::CutLink{&l, sd, dd});
    part.lookahead = std::min(part.lookahead, l.prop_delay());
  };
  for (const auto& h : hosts) consider(h->uplink(), h->id());
  for (const auto& sw : switches) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      consider(sw->port_link(p), sw->id());
    }
  }
  return part;
}

}  // namespace pase::topo
