#include "topo/partition.h"

#include <algorithm>

#include "sim/dcheck.h"

namespace pase::topo {

Partition partition_topology(const Topology& topo, int domains) {
  const auto& hosts = topo.hosts();
  const auto& switches = topo.switches();
  const std::size_t num_nodes = hosts.size() + switches.size();

  Partition part;
  part.domains = std::max(
      1, std::min(domains, static_cast<int>(hosts.size())));
  part.domain_of.assign(num_nodes, -1);
  if (part.domains <= 1) {
    std::fill(part.domain_of.begin(), part.domain_of.end(), 0);
    return part;
  }

  // Hosts: contiguous blocks by creation index, sizes differing by at most
  // one. Host i of H goes to floor(i * D / H).
  const std::size_t h_count = hosts.size();
  for (std::size_t i = 0; i < h_count; ++i) {
    const int d = static_cast<int>(
        i * static_cast<std::size_t>(part.domains) / h_count);
    part.domain_of[static_cast<std::size_t>(hosts[i]->id())] = d;
  }

  // Undirected neighbor sets from the link graph (host uplinks plus switch
  // ports; downlinks mirror uplinks, so each adjacency appears from both
  // sides anyway).
  std::vector<std::vector<net::NodeId>> adj(num_nodes);
  const auto add_edge = [&](net::NodeId a, net::NodeId b) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  };
  for (const auto& h : hosts) add_edge(h->id(), h->uplink().destination()->id());
  for (const auto& sw : switches) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      add_edge(sw->id(), sw->port_neighbor(p)->id());
    }
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // Switches join the domain of their lowest-id assigned neighbor; repeat
  // until stable (a pass per tree tier suffices, but the loop is general).
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& sw : switches) {
      const std::size_t id = static_cast<std::size_t>(sw->id());
      if (part.domain_of[id] != -1) continue;
      for (const net::NodeId n : adj[id]) {
        const int nd = part.domain_of[static_cast<std::size_t>(n)];
        if (nd != -1) {
          part.domain_of[id] = nd;
          progress = true;
          break;
        }
      }
    }
  }
  // Disconnected switches (none in the built topologies) default to 0.
  for (auto& d : part.domain_of) {
    if (d == -1) d = 0;
  }

  // Cut links, from the transmitting side: host uplinks and switch ports.
  const auto consider = [&](net::Link& l, net::NodeId src) {
    const int sd = part.domain_of[static_cast<std::size_t>(src)];
    const int dd =
        part.domain_of[static_cast<std::size_t>(l.destination()->id())];
    if (sd == dd) return;
    part.cut_links.push_back(Partition::CutLink{&l, sd, dd});
    part.lookahead = std::min(part.lookahead, l.prop_delay());
  };
  for (const auto& h : hosts) consider(h->uplink(), h->id());
  for (const auto& sw : switches) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      consider(sw->port_link(p), sw->id());
    }
  }
  return part;
}

}  // namespace pase::topo
