// A common seam over the concrete topologies.
//
// A TopologyBuilder knows how to size a workload for its topology (hints())
// and how to materialize the node/link graph for a given fabric
// (build(sim, queue_factory)). The BuiltTopology it returns keeps the
// structural facts a control plane needs — which ToR/Agg each host hangs
// off — without the caller having to know whether it is looking at a rack,
// a tree, or something new. The scenario harness only ever sees these two
// interfaces, so adding a topology means adding a builder, not editing the
// harness.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topo/fat_tree.h"
#include "topo/single_rack.h"
#include "topo/three_tier.h"
#include "topo/topology.h"

namespace pase::topo {

// Where a host attaches to the fabric (agg is null when there is no
// aggregation layer above the host's ToR; pod is -1 on topologies without
// pods).
struct HostAttachment {
  net::Switch* tor = nullptr;
  net::Switch* agg = nullptr;
  int pod = -1;
};

// Which fabric tier a queue's link belongs to: the tier of the *sending*
// node, so a host uplink is kHost, a ToR port (down or up) is kEdge, and so
// on. This is the rollup key the telemetry plane aggregates by.
enum class LinkTier : std::uint8_t { kHost = 0, kEdge = 1, kAgg = 2, kCore = 3 };

inline const char* link_tier_name(LinkTier t) {
  switch (t) {
    case LinkTier::kHost: return "host";
    case LinkTier::kEdge: return "edge";
    case LinkTier::kAgg: return "agg";
    case LinkTier::kCore: return "core";
  }
  return "?";
}

// Tier plus pod membership for one queue (pod -1: the sender is not inside a
// pod — core switches, or topologies without pods).
struct QueueClass {
  LinkTier tier = LinkTier::kEdge;
  int pod = -1;
};

// A materialized topology plus the structural metadata builders preserve.
class BuiltTopology {
 public:
  virtual ~BuiltTopology() = default;
  virtual Topology& topo() = 0;
  virtual double host_rate_bps() const = 0;
  // Core/fabric link rate; equals host_rate_bps when there is no fabric tier.
  virtual double fabric_rate_bps() const = 0;
  // Attachment of host index i (host creation order).
  virtual HostAttachment attachment(std::size_t host_index) const = 0;
  // Directed links touching the core tier — the surface ECMP is supposed to
  // balance. Empty when the topology has no core tier worth watching.
  virtual std::vector<net::Link*> core_links() const { return {}; }

  // Tier/pod class of every queue, in the canonical order of
  // Topology::for_each_queue (host uplinks in host order, then switch ports
  // in construction order). Host uplinks take the host's attachment pod;
  // switch ports take classify_switch of the owning switch. Defined in
  // builder.cc.
  std::vector<QueueClass> queue_classes();

 protected:
  // Tier/pod of one switch. The default says "edge, no pod", which is right
  // for the single-rack topology; the tree and fat-tree builders override.
  virtual QueueClass classify_switch(const net::Switch* sw) const {
    (void)sw;
    return {LinkTier::kEdge, -1};
  }
};

// Workload sizing facts derivable from the config alone, before building.
struct WorkloadHints {
  int num_hosts = 0;
  int left_hosts = 0;  // hosts in the left subtree; 0 when not partitioned
  double host_rate_bps = 0.0;
  double bottleneck_rate_bps = 0.0;  // capacity offered load is defined against
};

class TopologyBuilder {
 public:
  virtual ~TopologyBuilder() = default;
  virtual WorkloadHints hints() const = 0;
  virtual std::unique_ptr<BuiltTopology> build(
      sim::Simulator& sim, const QueueFactory& make_queue) const = 0;
};

class SingleRackBuilder : public TopologyBuilder {
 public:
  explicit SingleRackBuilder(SingleRackConfig cfg) : cfg_(cfg) {}
  WorkloadHints hints() const override;
  std::unique_ptr<BuiltTopology> build(
      sim::Simulator& sim, const QueueFactory& make_queue) const override;

 private:
  SingleRackConfig cfg_;
};

class ThreeTierBuilder : public TopologyBuilder {
 public:
  explicit ThreeTierBuilder(ThreeTierConfig cfg) : cfg_(cfg) {}
  WorkloadHints hints() const override;
  std::unique_ptr<BuiltTopology> build(
      sim::Simulator& sim, const QueueFactory& make_queue) const override;

 private:
  ThreeTierConfig cfg_;
};

class FatTreeBuilder : public TopologyBuilder {
 public:
  explicit FatTreeBuilder(FatTreeConfig cfg) : cfg_(cfg) {}
  WorkloadHints hints() const override;
  std::unique_ptr<BuiltTopology> build(
      sim::Simulator& sim, const QueueFactory& make_queue) const override;

 private:
  FatTreeConfig cfg_;
};

}  // namespace pase::topo
