#include "topo/fat_tree.h"

#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace pase::topo {

namespace {

std::vector<int> iota_ports(int lo, int hi) {
  std::vector<int> ports(static_cast<std::size_t>(hi - lo));
  std::iota(ports.begin(), ports.end(), lo);
  return ports;
}

// Structural route synthesizer: installs the exact tables per-destination
// BFS would produce (same ports, same group order — pinned by the
// equivalence tests), but arithmetically from {core, pod, edge, host}
// indices in O(V+E) total instead of O(V * E) search, and compressed —
// per-switch state is O(pod size + pods), independent of total host count.
//
// Node-id layout (construction order): cores occupy [0, C); pod p occupies
// the contiguous block starting at C + p*pod_size with its aggs first, then
// each edge switch immediately followed by its hosts. Port layout: edge
// ports [0, A) go to aggs in slot order then [A, A+H) to hosts; agg slot a's
// ports [0, half) go to cores [a*half, (a+1)*half) then [half, k) to edges;
// core c's port p goes to pod p's slot-(c/half) agg.
void install_structural_routes(const FatTreeConfig& cfg,
                               const std::vector<net::Switch*>& cores,
                               const std::vector<net::Switch*>& aggs,
                               const std::vector<net::Switch*>& edges) {
  const int half = cfg.k / 2;
  const int P = cfg.pods();
  const int A = cfg.aggs_per_pod();
  const int E = cfg.edges_per_pod();
  const int H = cfg.hosts_per_edge();
  const int C = cfg.num_cores();
  const int pod_size = A + E * (1 + H);
  const net::NodeId n_nodes = C + P * pod_size;
  const auto pod_base = [&](int p) {
    return static_cast<net::NodeId>(C + p * pod_size);
  };
  const auto agg_id = [&](int p, int a) {
    return static_cast<net::NodeId>(pod_base(p) + a);
  };
  const auto edge_id = [&](int p, int e) {
    return static_cast<net::NodeId>(pod_base(p) + A + e * (1 + H));
  };

  // Core c (plane a = c/half): any node in pod p exits port p — ONE strided
  // interval covers every pod. Other cores are reached through any pod's
  // slot-a agg (all ports equal-cost); the 1-wide window pins self=unrouted.
  for (int c = 0; c < C; ++c) {
    net::Switch* sw = cores[static_cast<std::size_t>(c)];
    sw->clear_routes();
    sw->set_route_id_bound(n_nodes);
    sw->set_dense_window(c, c + 1);
    sw->add_route_interval(0, C, sw->add_shared_group(iota_ports(0, P)));
    sw->add_route_interval_strided(C, n_nodes, 0, pod_size);
  }

  // Agg (p, a): own-plane cores are the strided ports [0, half); other-plane
  // cores and sibling aggs descend through the edges; same-slot foreign aggs
  // ride the default up-group, different-slot foreign aggs are equidistant
  // through every port. Everything else outside the pod defaults up to the
  // cores; the pod window holds the local stripe.
  for (int p = 0; p < P; ++p) {
    for (int a = 0; a < A; ++a) {
      net::Switch* sw = aggs[static_cast<std::size_t>(p * A + a)];
      sw->clear_routes();
      sw->set_route_id_bound(n_nodes);
      sw->set_dense_window(pod_base(p), pod_base(p) + pod_size);
      const std::int32_t down = sw->add_shared_group(iota_ports(half, half + E));
      const std::int32_t up = sw->add_shared_group(iota_ports(0, half));
      std::int32_t all = net::kInvalidNode;  // lazily allocated
      const auto all_ports = [&]() {
        if (all == net::kInvalidNode) {
          all = sw->add_shared_group(iota_ports(0, half + E));
        }
        return all;
      };
      sw->set_default_route_entry(up);
      if (a > 0) sw->add_route_interval(0, a * half, down);
      sw->add_route_interval_strided(a * half, (a + 1) * half, 0, 1);
      if ((a + 1) * half < C) sw->add_route_interval((a + 1) * half, C, down);
      for (int q = 0; q < P; ++q) {
        if (q == p) continue;
        if (a > 0) sw->add_route_interval(pod_base(q), pod_base(q) + a,
                                          all_ports());
        if (a + 1 < A) sw->add_route_interval(pod_base(q) + a + 1,
                                              pod_base(q) + A, all_ports());
      }
      for (int a2 = 0; a2 < A; ++a2) {
        if (a2 != a) sw->set_route_entry(agg_id(p, a2), down);
      }
      for (int e = 0; e < E; ++e) {
        const net::NodeId eid = edge_id(p, e);
        for (net::NodeId d = eid; d < eid + 1 + H; ++d) {
          sw->set_route(d, half + e);
        }
      }
    }
  }

  // Edge (p, e): cores are a strided single port (only the slot-(c/half) agg
  // neighbors core c's plane); a foreign pod's slot-a' agg is the single
  // port a' (only that slot's plane reaches it in two more hops); every
  // other remote node is the equal-cost up-group. Own aggs and hosts fill
  // the pod window.
  for (int p = 0; p < P; ++p) {
    for (int e = 0; e < E; ++e) {
      net::Switch* sw = edges[static_cast<std::size_t>(p * E + e)];
      sw->clear_routes();
      sw->set_route_id_bound(n_nodes);
      sw->set_dense_window(pod_base(p), pod_base(p) + pod_size);
      const std::int32_t up = sw->add_shared_group(iota_ports(0, A));
      sw->set_default_route_entry(up);
      sw->add_route_interval_strided(0, C, 0, half);
      for (int q = 0; q < P; ++q) {
        if (q == p) continue;
        sw->add_route_interval_strided(pod_base(q), pod_base(q) + A, 0, 1);
      }
      for (int a = 0; a < A; ++a) sw->set_route(agg_id(p, a), a);
      for (int e2 = 0; e2 < E; ++e2) {
        const net::NodeId eid = edge_id(p, e2);
        if (e2 == e) {
          for (int h = 0; h < H; ++h) sw->set_route(eid + 1 + h, A + h);
        } else {
          for (net::NodeId d = eid; d < eid + 1 + H; ++d) {
            sw->set_route_entry(d, up);
          }
        }
      }
    }
  }
}

}  // namespace

FatTree build_fat_tree(sim::Simulator& sim, const FatTreeConfig& cfg,
                       const QueueFactory& make_queue) {
  // Always-on validation (not assert): direct callers — tools/dump_topology,
  // tests, external embedders — bypass ScenarioConfig validation, and a
  // malformed fabric (odd k) must not build silently in release builds.
  if (cfg.k < 2 || cfg.k % 2 != 0) {
    throw std::invalid_argument("fat-tree radix k must be even and >= 2, got " +
                                std::to_string(cfg.k));
  }
  if (cfg.pods() < 1 || cfg.pods() > cfg.k) {
    throw std::invalid_argument("fat-tree pods must be in [1, k=" +
                                std::to_string(cfg.k) + "], got " +
                                std::to_string(cfg.pods()));
  }
  if (cfg.hosts_per_edge() < 1) {
    throw std::invalid_argument(
        "fat-tree hosts_per_edge must be >= 1, got " +
        std::to_string(cfg.hosts_per_edge()));
  }
  FatTree t;
  t.config = cfg;
  t.topo = std::make_unique<Topology>(sim);
  Topology& topo = *t.topo;
  topo.set_ecmp_seed(cfg.ecmp_seed);

  const int half_k = cfg.k / 2;

  // Core tier first, so cores occupy node ids [0, num_cores). Core c serves
  // aggregation slot c / half_k in every pod (plane-major numbering).
  for (int c = 0; c < cfg.num_cores(); ++c) {
    t.cores.push_back(topo.add_switch("core" + std::to_string(c)));
  }

  for (int p = 0; p < cfg.pods(); ++p) {
    const std::string pod = "p" + std::to_string(p);
    // Aggregation slot a connects to cores [a*half_k, (a+1)*half_k).
    for (int a = 0; a < cfg.aggs_per_pod(); ++a) {
      net::Switch* agg = topo.add_switch(pod + ".agg" + std::to_string(a));
      t.aggs.push_back(agg);
      topo.set_partition_group(agg->id(), p);
      for (int c = a * half_k; c < (a + 1) * half_k; ++c) {
        topo.connect_switches(agg, t.cores[static_cast<std::size_t>(c)],
                              cfg.fabric_rate_bps, cfg.per_link_delay,
                              make_queue);
      }
    }
    for (int e = 0; e < cfg.edges_per_pod(); ++e) {
      net::Switch* edge = topo.add_switch(pod + ".edge" + std::to_string(e));
      t.edges.push_back(edge);
      topo.set_partition_group(edge->id(), p);
      for (int a = 0; a < cfg.aggs_per_pod(); ++a) {
        topo.connect_switches(
            edge,
            t.aggs[static_cast<std::size_t>(p * cfg.aggs_per_pod() + a)],
            cfg.fabric_rate_bps, cfg.per_link_delay, make_queue);
      }
      for (int h = 0; h < cfg.hosts_per_edge(); ++h) {
        net::Host* host = topo.add_host(
            pod + ".e" + std::to_string(e) + ".h" + std::to_string(h), edge,
            cfg.host_rate_bps, cfg.per_link_delay, make_queue);
        topo.set_partition_group(host->id(), p);
      }
    }
  }

  // Register the structural synthesizer so build_routes (and every re-run,
  // e.g. after an ECMP seed change) installs compressed tables arithmetically
  // instead of per-destination BFS. The captured switch pointers stay valid
  // across FatTree moves — they point into the Topology's node storage.
  topo.set_route_installer(
      [cfg, cores = t.cores, aggs = t.aggs, edges = t.edges](Topology&) {
        install_structural_routes(cfg, cores, aggs, edges);
      });
  topo.build_routes();
  return t;
}

std::vector<net::Link*> FatTree::core_links() const {
  std::vector<net::Link*> links;
  const net::NodeId core_bound = static_cast<net::NodeId>(cores.size());
  for (net::Switch* core : cores) {
    for (int p = 0; p < core->num_ports(); ++p) {
      links.push_back(&core->port_link(p));
    }
  }
  for (net::Switch* agg : aggs) {
    for (int p = 0; p < agg->num_ports(); ++p) {
      if (agg->port_neighbor(p)->id() < core_bound) {
        links.push_back(&agg->port_link(p));
      }
    }
  }
  return links;
}

}  // namespace pase::topo
