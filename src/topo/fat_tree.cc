#include "topo/fat_tree.h"

#include <stdexcept>
#include <string>

namespace pase::topo {

FatTree build_fat_tree(sim::Simulator& sim, const FatTreeConfig& cfg,
                       const QueueFactory& make_queue) {
  // Always-on validation (not assert): direct callers — tools/dump_topology,
  // tests, external embedders — bypass ScenarioConfig validation, and a
  // malformed fabric (odd k) must not build silently in release builds.
  if (cfg.k < 2 || cfg.k % 2 != 0) {
    throw std::invalid_argument("fat-tree radix k must be even and >= 2, got " +
                                std::to_string(cfg.k));
  }
  if (cfg.pods() < 1 || cfg.pods() > cfg.k) {
    throw std::invalid_argument("fat-tree pods must be in [1, k=" +
                                std::to_string(cfg.k) + "], got " +
                                std::to_string(cfg.pods()));
  }
  if (cfg.hosts_per_edge() < 1) {
    throw std::invalid_argument(
        "fat-tree hosts_per_edge must be >= 1, got " +
        std::to_string(cfg.hosts_per_edge()));
  }
  FatTree t;
  t.config = cfg;
  t.topo = std::make_unique<Topology>(sim);
  Topology& topo = *t.topo;
  topo.set_ecmp_seed(cfg.ecmp_seed);

  const int half_k = cfg.k / 2;

  // Core tier first, so cores occupy node ids [0, num_cores). Core c serves
  // aggregation slot c / half_k in every pod (plane-major numbering).
  for (int c = 0; c < cfg.num_cores(); ++c) {
    t.cores.push_back(topo.add_switch("core" + std::to_string(c)));
  }

  for (int p = 0; p < cfg.pods(); ++p) {
    const std::string pod = "p" + std::to_string(p);
    // Aggregation slot a connects to cores [a*half_k, (a+1)*half_k).
    for (int a = 0; a < cfg.aggs_per_pod(); ++a) {
      net::Switch* agg = topo.add_switch(pod + ".agg" + std::to_string(a));
      t.aggs.push_back(agg);
      topo.set_partition_group(agg->id(), p);
      for (int c = a * half_k; c < (a + 1) * half_k; ++c) {
        topo.connect_switches(agg, t.cores[static_cast<std::size_t>(c)],
                              cfg.fabric_rate_bps, cfg.per_link_delay,
                              make_queue);
      }
    }
    for (int e = 0; e < cfg.edges_per_pod(); ++e) {
      net::Switch* edge = topo.add_switch(pod + ".edge" + std::to_string(e));
      t.edges.push_back(edge);
      topo.set_partition_group(edge->id(), p);
      for (int a = 0; a < cfg.aggs_per_pod(); ++a) {
        topo.connect_switches(
            edge,
            t.aggs[static_cast<std::size_t>(p * cfg.aggs_per_pod() + a)],
            cfg.fabric_rate_bps, cfg.per_link_delay, make_queue);
      }
      for (int h = 0; h < cfg.hosts_per_edge(); ++h) {
        net::Host* host = topo.add_host(
            pod + ".e" + std::to_string(e) + ".h" + std::to_string(h), edge,
            cfg.host_rate_bps, cfg.per_link_delay, make_queue);
        topo.set_partition_group(host->id(), p);
      }
    }
  }

  topo.build_routes();
  return t;
}

std::vector<net::Link*> FatTree::core_links() const {
  std::vector<net::Link*> links;
  const net::NodeId core_bound = static_cast<net::NodeId>(cores.size());
  for (net::Switch* core : cores) {
    for (int p = 0; p < core->num_ports(); ++p) {
      links.push_back(&core->port_link(p));
    }
  }
  for (net::Switch* agg : aggs) {
    for (int p = 0; p < agg->num_ports(); ++p) {
      if (agg->port_neighbor(p)->id() < core_bound) {
        links.push_back(&agg->port_link(p));
      }
    }
  }
  return links;
}

}  // namespace pase::topo
