// Single-rack topology: n hosts under one ToR switch. Used for the paper's
// intra-rack scenarios (Figs. 1, 2, 4, 9c, 10c, 13a) and the testbed
// reproduction (Fig. 13b).
#pragma once

#include <memory>

#include "topo/topology.h"

namespace pase::topo {

struct SingleRackConfig {
  int num_hosts = 40;
  double host_rate_bps = 1e9;
  // 25 us per hop x 4 hops = 100 us intra-rack propagation RTT. The testbed
  // scenario overrides this to hit its 250 us RTT.
  sim::Time per_link_delay = 25e-6;
};

struct SingleRack {
  std::unique_ptr<Topology> topo;
  net::Switch* tor = nullptr;
  SingleRackConfig config;
};

SingleRack build_single_rack(sim::Simulator& sim, const SingleRackConfig& cfg,
                             const QueueFactory& make_queue);

}  // namespace pase::topo
