// k-ary fat-tree (Clos) fabric: k pods of k/2 edge + k/2 aggregation
// switches, (k/2)^2 core switches, and hosts_per_edge hosts under each edge
// switch. Every host pair in distinct pods has (k/2)^2 equal-cost paths, so
// routing relies on the switches' per-flow ECMP groups. Pod membership is
// recorded as the partition group of every pod switch and host, making pod
// boundaries (the core links) the natural cut edges for the parallel engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topo/topology.h"

namespace pase::topo {

struct FatTreeConfig {
  int k = 4;           // switch radix; must be even and >= 2
  int num_pods = 0;    // 0 means the full k pods
  // Hosts per edge switch = (k/2) * oversubscription (1.0 = rearrangeably
  // non-blocking, 2.0 = 2:1 oversubscribed at the edge uplinks).
  double oversubscription = 1.0;
  double host_rate_bps = 1e9;
  double fabric_rate_bps = 10e9;
  sim::Time per_link_delay = 25e-6;
  std::uint64_t ecmp_seed = 0;

  int pods() const { return num_pods > 0 ? num_pods : k; }
  int edges_per_pod() const { return k / 2; }
  int aggs_per_pod() const { return k / 2; }
  int num_cores() const { return (k / 2) * (k / 2); }
  int hosts_per_edge() const {
    return static_cast<int>(static_cast<double>(k / 2) * oversubscription);
  }
  int hosts_per_pod() const { return edges_per_pod() * hosts_per_edge(); }
  int num_hosts() const { return pods() * hosts_per_pod(); }
  int num_switches() const {
    return num_cores() + pods() * (edges_per_pod() + aggs_per_pod());
  }
};

struct FatTree {
  std::unique_ptr<Topology> topo;
  std::vector<net::Switch*> cores;
  std::vector<net::Switch*> aggs;   // pod-major: pod * k/2 + a
  std::vector<net::Switch*> edges;  // pod-major: pod * k/2 + e
  FatTreeConfig config;

  int num_hosts() const { return config.num_hosts(); }
  // Hosts are created pod-by-pod, edge-by-edge.
  int pod_of_host(int host_index) const {
    return host_index / config.hosts_per_pod();
  }
  int edge_of_host(int host_index) const {  // global edge index (pod-major)
    return host_index / config.hosts_per_edge();
  }
  net::Switch* agg_of_pod(int pod) const {
    return aggs[static_cast<std::size_t>(pod * config.aggs_per_pod())];
  }
  // Directed links touching the core tier (agg->core uplinks and core->agg
  // downlinks) — the ECMP load-balance surface.
  std::vector<net::Link*> core_links() const;
};

FatTree build_fat_tree(sim::Simulator& sim, const FatTreeConfig& cfg,
                       const QueueFactory& make_queue);

}  // namespace pase::topo
