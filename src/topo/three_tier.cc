#include "topo/three_tier.h"

#include <cassert>
#include <string>

namespace pase::topo {

ThreeTier build_three_tier(sim::Simulator& sim, const ThreeTierConfig& cfg,
                           const QueueFactory& make_queue) {
  assert(cfg.num_tors % cfg.tors_per_agg == 0);
  ThreeTier t;
  t.config = cfg;
  t.topo = std::make_unique<Topology>(sim);
  Topology& topo = *t.topo;

  t.core = topo.add_switch("core");
  const int num_aggs = cfg.num_tors / cfg.tors_per_agg;
  for (int a = 0; a < num_aggs; ++a) {
    net::Switch* agg = topo.add_switch("agg" + std::to_string(a));
    t.aggs.push_back(agg);
    topo.connect_switches(agg, t.core, cfg.fabric_rate_bps,
                          cfg.per_link_delay, make_queue);
  }
  for (int r = 0; r < cfg.num_tors; ++r) {
    net::Switch* tor = topo.add_switch("tor" + std::to_string(r));
    t.tors.push_back(tor);
    topo.connect_switches(tor, t.aggs[static_cast<std::size_t>(r / cfg.tors_per_agg)],
                          cfg.fabric_rate_bps, cfg.per_link_delay, make_queue);
    for (int h = 0; h < cfg.hosts_per_tor; ++h) {
      topo.add_host("h" + std::to_string(r) + "." + std::to_string(h), tor,
                    cfg.host_rate_bps, cfg.per_link_delay, make_queue);
    }
  }
  topo.build_routes();
  return t;
}

}  // namespace pase::topo
