#include "topo/builder.h"

namespace pase::topo {

namespace {

class BuiltSingleRack : public BuiltTopology {
 public:
  explicit BuiltSingleRack(SingleRack rack) : rack_(std::move(rack)) {}
  Topology& topo() override { return *rack_.topo; }
  double host_rate_bps() const override { return rack_.config.host_rate_bps; }
  // A rack has no fabric tier: the host links are the fabric.
  double fabric_rate_bps() const override { return rack_.config.host_rate_bps; }
  HostAttachment attachment(std::size_t) const override {
    return HostAttachment{rack_.tor, nullptr};
  }

 private:
  SingleRack rack_;
};

class BuiltThreeTier : public BuiltTopology {
 public:
  explicit BuiltThreeTier(ThreeTier tree) : tree_(std::move(tree)) {}
  Topology& topo() override { return *tree_.topo; }
  double host_rate_bps() const override { return tree_.config.host_rate_bps; }
  double fabric_rate_bps() const override {
    return tree_.config.fabric_rate_bps;
  }
  HostAttachment attachment(std::size_t host_index) const override {
    const int tor = tree_.tor_of_host(static_cast<int>(host_index));
    return HostAttachment{tree_.tors[static_cast<std::size_t>(tor)],
                          tree_.agg_of_tor(tor), -1};
  }
  std::vector<net::Link*> core_links() const override {
    std::vector<net::Link*> links;
    for (int p = 0; p < tree_.core->num_ports(); ++p) {
      links.push_back(&tree_.core->port_link(p));
    }
    for (net::Switch* agg : tree_.aggs) {
      for (int p = 0; p < agg->num_ports(); ++p) {
        if (agg->port_neighbor(p) == tree_.core) {
          links.push_back(&agg->port_link(p));
        }
      }
    }
    return links;
  }

 protected:
  QueueClass classify_switch(const net::Switch* sw) const override {
    if (sw == tree_.core) return {LinkTier::kCore, -1};
    for (const net::Switch* a : tree_.aggs) {
      if (a == sw) return {LinkTier::kAgg, -1};
    }
    return {LinkTier::kEdge, -1};
  }

 private:
  ThreeTier tree_;
};

// A fat-tree host's control-plane attachment: its edge switch plays the ToR
// role and the pod's first aggregation switch stands in for the whole agg
// tier (PASE's per-host arbitration trunk is an approximation under ECMP —
// all hosts of a pod share one designated aggregation arbitrator).
class BuiltFatTree : public BuiltTopology {
 public:
  explicit BuiltFatTree(FatTree tree) : tree_(std::move(tree)) {}
  Topology& topo() override { return *tree_.topo; }
  double host_rate_bps() const override { return tree_.config.host_rate_bps; }
  double fabric_rate_bps() const override {
    return tree_.config.fabric_rate_bps;
  }
  HostAttachment attachment(std::size_t host_index) const override {
    const int i = static_cast<int>(host_index);
    const int pod = tree_.pod_of_host(i);
    return HostAttachment{
        tree_.edges[static_cast<std::size_t>(tree_.edge_of_host(i))],
        tree_.agg_of_pod(pod), pod};
  }
  std::vector<net::Link*> core_links() const override {
    return tree_.core_links();
  }

 protected:
  // Aggs and edges are stored pod-major, so a switch's pod is its index over
  // the per-pod stride.
  QueueClass classify_switch(const net::Switch* sw) const override {
    for (const net::Switch* c : tree_.cores) {
      if (c == sw) return {LinkTier::kCore, -1};
    }
    for (std::size_t a = 0; a < tree_.aggs.size(); ++a) {
      if (tree_.aggs[a] == sw) {
        return {LinkTier::kAgg,
                static_cast<int>(a) / tree_.config.aggs_per_pod()};
      }
    }
    for (std::size_t e = 0; e < tree_.edges.size(); ++e) {
      if (tree_.edges[e] == sw) {
        return {LinkTier::kEdge,
                static_cast<int>(e) / tree_.config.edges_per_pod()};
      }
    }
    return {LinkTier::kEdge, -1};
  }

 private:
  FatTree tree_;
};

}  // namespace

std::vector<QueueClass> BuiltTopology::queue_classes() {
  Topology& t = topo();
  std::vector<QueueClass> classes;
  for (std::size_t i = 0; i < t.hosts().size(); ++i) {
    classes.push_back({LinkTier::kHost, attachment(i).pod});
  }
  for (const auto& sw : t.switches()) {
    const QueueClass c = classify_switch(sw.get());
    for (int p = 0; p < sw->num_ports(); ++p) classes.push_back(c);
  }
  return classes;
}

WorkloadHints SingleRackBuilder::hints() const {
  WorkloadHints h;
  h.num_hosts = cfg_.num_hosts;
  h.host_rate_bps = cfg_.host_rate_bps;
  h.bottleneck_rate_bps = cfg_.host_rate_bps;
  return h;
}

std::unique_ptr<BuiltTopology> SingleRackBuilder::build(
    sim::Simulator& sim, const QueueFactory& make_queue) const {
  return std::make_unique<BuiltSingleRack>(
      build_single_rack(sim, cfg_, make_queue));
}

WorkloadHints ThreeTierBuilder::hints() const {
  WorkloadHints h;
  h.num_hosts = cfg_.num_tors * cfg_.hosts_per_tor;
  h.left_hosts = h.num_hosts / 2;
  h.host_rate_bps = cfg_.host_rate_bps;
  h.bottleneck_rate_bps = cfg_.fabric_rate_bps;
  return h;
}

std::unique_ptr<BuiltTopology> ThreeTierBuilder::build(
    sim::Simulator& sim, const QueueFactory& make_queue) const {
  return std::make_unique<BuiltThreeTier>(
      build_three_tier(sim, cfg_, make_queue));
}

WorkloadHints FatTreeBuilder::hints() const {
  WorkloadHints h;
  h.num_hosts = cfg_.num_hosts();
  h.left_hosts = h.num_hosts / 2;
  h.host_rate_bps = cfg_.host_rate_bps;
  h.bottleneck_rate_bps = cfg_.fabric_rate_bps;
  return h;
}

std::unique_ptr<BuiltTopology> FatTreeBuilder::build(
    sim::Simulator& sim, const QueueFactory& make_queue) const {
  return std::make_unique<BuiltFatTree>(build_fat_tree(sim, cfg_, make_queue));
}

}  // namespace pase::topo
