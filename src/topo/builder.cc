#include "topo/builder.h"

namespace pase::topo {

namespace {

class BuiltSingleRack : public BuiltTopology {
 public:
  explicit BuiltSingleRack(SingleRack rack) : rack_(std::move(rack)) {}
  Topology& topo() override { return *rack_.topo; }
  double host_rate_bps() const override { return rack_.config.host_rate_bps; }
  // A rack has no fabric tier: the host links are the fabric.
  double fabric_rate_bps() const override { return rack_.config.host_rate_bps; }
  HostAttachment attachment(std::size_t) const override {
    return HostAttachment{rack_.tor, nullptr};
  }

 private:
  SingleRack rack_;
};

class BuiltThreeTier : public BuiltTopology {
 public:
  explicit BuiltThreeTier(ThreeTier tree) : tree_(std::move(tree)) {}
  Topology& topo() override { return *tree_.topo; }
  double host_rate_bps() const override { return tree_.config.host_rate_bps; }
  double fabric_rate_bps() const override {
    return tree_.config.fabric_rate_bps;
  }
  HostAttachment attachment(std::size_t host_index) const override {
    const int tor = tree_.tor_of_host(static_cast<int>(host_index));
    return HostAttachment{tree_.tors[static_cast<std::size_t>(tor)],
                          tree_.agg_of_tor(tor)};
  }

 private:
  ThreeTier tree_;
};

}  // namespace

WorkloadHints SingleRackBuilder::hints() const {
  WorkloadHints h;
  h.num_hosts = cfg_.num_hosts;
  h.host_rate_bps = cfg_.host_rate_bps;
  h.bottleneck_rate_bps = cfg_.host_rate_bps;
  return h;
}

std::unique_ptr<BuiltTopology> SingleRackBuilder::build(
    sim::Simulator& sim, const QueueFactory& make_queue) const {
  return std::make_unique<BuiltSingleRack>(
      build_single_rack(sim, cfg_, make_queue));
}

WorkloadHints ThreeTierBuilder::hints() const {
  WorkloadHints h;
  h.num_hosts = cfg_.num_tors * cfg_.hosts_per_tor;
  h.left_hosts = h.num_hosts / 2;
  h.host_rate_bps = cfg_.host_rate_bps;
  h.bottleneck_rate_bps = cfg_.fabric_rate_bps;
  return h;
}

std::unique_ptr<BuiltTopology> ThreeTierBuilder::build(
    sim::Simulator& sim, const QueueFactory& make_queue) const {
  return std::make_unique<BuiltThreeTier>(
      build_three_tier(sim, cfg_, make_queue));
}

}  // namespace pase::topo
