// Topology container: owns all hosts, switches, queues and links, wires them
// together, and computes static shortest-path routing (the evaluation
// topologies are trees, so paths are unique).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace pase::topo {

// Builds the queue for a link of the given capacity. Experiments choose the
// fabric (RED/ECN for DCTCP-family, priority bank for PASE, pFabric queue...)
// by supplying a factory.
using QueueFactory =
    std::function<std::unique_ptr<net::Queue>(double link_rate_bps)>;

class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_(&sim) {}

  net::Switch* add_switch(const std::string& name);

  // Creates a host attached to `tor` by a symmetric pair of links
  // (host->tor uplink and tor->host downlink) of the given rate/delay.
  net::Host* add_host(const std::string& name, net::Switch* tor,
                      double rate_bps, sim::Time prop_delay,
                      const QueueFactory& make_queue);

  // Adds a symmetric pair of links between two switches.
  void connect_switches(net::Switch* a, net::Switch* b, double rate_bps,
                        sim::Time prop_delay, const QueueFactory& make_queue);

  // Computes routing tables. Must be called after all nodes/links exist.
  void build_routes();

  sim::Simulator& simulator() { return *sim_; }

  const std::vector<std::unique_ptr<net::Host>>& hosts() const {
    return hosts_;
  }
  const std::vector<std::unique_ptr<net::Switch>>& switches() const {
    return switches_;
  }
  net::Host* host(std::size_t i) { return hosts_[i].get(); }
  std::size_t num_hosts() const { return hosts_.size(); }

  net::Node* node(net::NodeId id) const;

  // One-way propagation delay along the (unique) path between two nodes.
  sim::Time propagation_delay(net::NodeId from, net::NodeId to) const;
  // Round-trip propagation delay (no queueing/serialization).
  sim::Time propagation_rtt(net::NodeId a, net::NodeId b) const {
    return propagation_delay(a, b) + propagation_delay(b, a);
  }

  // Aggregate fabric statistics (all switch port queues + host uplinks).
  std::uint64_t total_drops() const;
  std::uint64_t total_marks() const;
  std::uint64_t total_enqueues() const;

  // Visits every queue in the topology.
  void for_each_queue(const std::function<void(net::Queue&)>& fn) const;

 private:
  struct Edge {
    net::NodeId from;
    net::NodeId to;
    sim::Time delay;
  };

  net::NodeId next_id() {
    return static_cast<net::NodeId>(hosts_.size() + switches_.size());
  }

  // Next hop from `from` toward `to` on the unique path; kInvalidNode if
  // unreachable.
  net::NodeId next_hop(net::NodeId from, net::NodeId to) const;

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
  std::vector<net::Node*> nodes_;  // indexed by node id
  std::vector<Edge> edges_;        // directed
};

}  // namespace pase::topo
