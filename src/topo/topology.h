// Topology container: owns all hosts, switches, queues and links, wires them
// together, and computes static shortest-path routing. Where several
// equal-cost shortest paths exist (fat-tree fabrics), every min-hop port is
// installed as an ECMP group on the switch; tree topologies degenerate to
// the single-path tables they always had.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace pase::topo {

// Builds the queue for a link of the given capacity. Experiments choose the
// fabric (RED/ECN for DCTCP-family, priority bank for PASE, pFabric queue...)
// by supplying a factory.
using QueueFactory =
    std::function<std::unique_ptr<net::Queue>(double link_rate_bps)>;

class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_(&sim) {}

  net::Switch* add_switch(const std::string& name);

  // Creates a host attached to `tor` by a symmetric pair of links
  // (host->tor uplink and tor->host downlink) of the given rate/delay.
  net::Host* add_host(const std::string& name, net::Switch* tor,
                      double rate_bps, sim::Time prop_delay,
                      const QueueFactory& make_queue);

  // Adds a symmetric pair of links between two switches.
  void connect_switches(net::Switch* a, net::Switch* b, double rate_bps,
                        sim::Time prop_delay, const QueueFactory& make_queue);

  // Computes routing tables and stamps the ECMP seed and name resolver onto
  // every switch. Must be called after all nodes/links exist. When a
  // structural route installer is registered (fat-tree), it runs instead of
  // the generic per-destination BFS — O(V+E) arithmetic installs versus
  // O(V * E) search — and re-runs on every call, so seed changes rebuild
  // identically without leaking group state.
  void build_routes();

  // Always the generic fallback: per destination, every port on a min-hop
  // path is installed (a multi-port destination becomes an ECMP group hashed
  // per flow). Public as the equivalence oracle for structural installers.
  void build_routes_bfs();

  // Registers a structural route synthesizer that build_routes dispatches
  // to. The installer must fully rebuild every switch's tables (they call
  // Switch::clear_routes first), since build_routes may run repeatedly.
  using RouteInstaller = std::function<void(Topology&)>;
  void set_route_installer(RouteInstaller installer) {
    route_installer_ = std::move(installer);
  }

  // Total bytes held by all switches' route tables (compressed windows,
  // intervals, groups) — the scale gate benches report this per fabric.
  std::size_t route_table_bytes() const;

  // Seed folded into every switch's per-flow path hash. Set before
  // build_routes (or call build_routes again); same seed + same topology
  // construction order => identical path assignment, bit-reproducible.
  void set_ecmp_seed(std::uint64_t seed) { ecmp_seed_ = seed; }
  std::uint64_t ecmp_seed() const { return ecmp_seed_; }

  // Optional partitioning hint: nodes sharing a group (e.g. a fat-tree pod)
  // are kept in one domain by partition_topology, making the group boundary
  // the cut. -1 (default) means unconstrained.
  void set_partition_group(net::NodeId id, int group);
  int partition_group(net::NodeId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= partition_group_.size()) {
      return -1;
    }
    return partition_group_[static_cast<std::size_t>(id)];
  }

  sim::Simulator& simulator() { return *sim_; }

  const std::vector<std::unique_ptr<net::Host>>& hosts() const {
    return hosts_;
  }
  const std::vector<std::unique_ptr<net::Switch>>& switches() const {
    return switches_;
  }
  net::Host* host(std::size_t i) { return hosts_[i].get(); }
  std::size_t num_hosts() const { return hosts_.size(); }

  net::Node* node(net::NodeId id) const;

  // One-way propagation delay along a deterministic min-hop path between two
  // nodes (the unique path on tree topologies; the first-constructed
  // shortest path otherwise).
  sim::Time propagation_delay(net::NodeId from, net::NodeId to) const;
  // Round-trip propagation delay (no queueing/serialization).
  sim::Time propagation_rtt(net::NodeId a, net::NodeId b) const {
    return propagation_delay(a, b) + propagation_delay(b, a);
  }

  // Aggregate fabric statistics (all switch port queues + host uplinks).
  std::uint64_t total_drops() const;
  std::uint64_t total_marks() const;
  std::uint64_t total_enqueues() const;

  // Visits every queue in the topology.
  void for_each_queue(const std::function<void(net::Queue&)>& fn) const;

 private:
  // Directed half-edge in a node's adjacency list (insertion order matches
  // link construction order, which keeps route tables deterministic).
  struct HalfEdge {
    net::NodeId to;
    sim::Time delay;
  };

  net::NodeId next_id() {
    return static_cast<net::NodeId>(hosts_.size() + switches_.size());
  }

  void add_edge_pair(net::NodeId a, net::NodeId b, sim::Time delay);

  // Min-hop distance from every node to `to` (-1 when unreachable).
  std::vector<std::int32_t> hop_distances(net::NodeId to) const;

  void install_bfs_routes();
  void finalize_switch_config();

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
  std::vector<net::Node*> nodes_;            // indexed by node id
  std::vector<std::vector<HalfEdge>> adj_;   // indexed by node id
  std::vector<int> partition_group_;         // indexed by node id; -1 = none
  std::uint64_t ecmp_seed_ = 0;
  RouteInstaller route_installer_;
};

}  // namespace pase::topo
